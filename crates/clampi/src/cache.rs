//! The caching engine `C_w = (I_w, S_w)`: the paper's core state machine.
//!
//! [`RmaCache`] ties together the Cuckoo index, the contiguous storage, the
//! victim-selection scores and the statistics. It is a *pure* state
//! machine: it never talks to the network. The window wrapper
//! ([`crate::CachedWindow`]) drives it in three steps per `get_c`:
//!
//! 1. [`RmaCache::process_lookup`] — classify the request against the
//!    index; on a (full) hit the data is copied into the destination
//!    buffer and the wrapper is done.
//! 2. On a miss / partial hit the wrapper issues the remote get, then calls
//!    [`RmaCache::finish_miss`] / [`RmaCache::finish_partial`] to try to
//!    cache the fetched data (direct / conflicting / capacity / failed).
//! 3. At every epoch closure the wrapper calls [`RmaCache::epoch_close`],
//!    which promotes `PENDING` entries to `CACHED` — the moment the paper
//!    performs the deferred cache-fill copies.
//!
//! **Sharding.** The engine state is split into [`ShardCore`]s, one per
//! hash stripe of the [`GetKey`] ([`GetKey::stripe`] `mod` shard count).
//! Each shard owns an independent Cuckoo index, entry slab and storage
//! arena, so shards never contend on each other's state. `RmaCache` keeps
//! the paper-facing single-threaded API (with [`CacheParams::shards`]` = 1`
//! it is bit-identical to the unsharded engine: shard 0 inherits the
//! engine's seeds and full capacity); the concurrent front
//! ([`crate::ShardedCache`]) wraps one `ShardCore` per stripe behind a
//! seqlock so hits take zero write-locks.
//!
//! **Timing.** The simulator moves bytes eagerly (data is always available
//! in wall-clock terms), but every management action accumulates model CPU
//! time which the wrapper drains via [`RmaCache::take_cost`] and charges to
//! the rank's virtual clock. Copies that the paper performs at epoch
//! closure (cache fills, pending-hit deliveries) are accumulated separately
//! and only charged when `epoch_close` runs — this is what gives *failing*
//! accesses their better comm/comp overlap in Fig. 8.

use std::collections::BTreeMap;
use std::sync::Arc;

use clampi_datatype::FlatLayout;
use clampi_prng::SmallRng;

use crate::costs::CacheCostModel;
use crate::eviction::{positional_score, score, temporal_score, VictimScheme};
use crate::index::{CuckooIndex, EntryId, GetKey, InsertOutcome};
use crate::lease::LeaseTable;
use crate::snapshot::SnapStamp;
use crate::stats::{AccessType, CacheStats};
use crate::storage::{DescId, Storage};
use crate::vcache::PolicyLab;

/// The shape of a get's payload, compared for full/partial-hit decisions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutSig {
    /// A single contiguous block of this many bytes at the displacement.
    Contig(usize),
    /// A non-contiguous flattened layout (offsets relative to the
    /// displacement).
    Blocks(Arc<FlatLayout>),
}

impl LayoutSig {
    /// Builds the signature for a flattened layout.
    pub fn from_layout(layout: &FlatLayout) -> Self {
        if layout.is_dense() {
            LayoutSig::Contig(layout.total_size())
        } else {
            LayoutSig::Blocks(Arc::new(layout.clone()))
        }
    }

    /// Payload size in bytes.
    pub fn size(&self) -> usize {
        match self {
            LayoutSig::Contig(s) => *s,
            LayoutSig::Blocks(l) => l.total_size(),
        }
    }
}

/// Cache entry states (Fig. 5). `MISSING` is represented by absence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryState {
    /// Requested in the current epoch; data arrives (conceptually) at the
    /// epoch closure.
    Pending,
    /// Data resident in `S_w` and servable.
    Cached,
}

#[derive(Debug)]
struct Entry {
    key: GetKey,
    sig: LayoutSig,
    size: usize,
    state: EntryState,
    desc: DescId,
    /// Byte offset of `desc`'s region in the storage buffer, cached here
    /// so the seqlock hit path can copy payload bytes without walking the
    /// descriptor list (which optimistic readers must never touch).
    off: usize,
    last: u64,
    /// Target-region write version observed when this entry was filled
    /// (0 when the caller does not track versions). The coherence layer
    /// compares it against put-notification records to drop stale data.
    version: u64,
    /// Absolute lease expiry (a get sequence number) under
    /// [`VictimScheme::Lease`]; 0 means "no lease assigned" and reads as
    /// already expired, so entries inherited by a mid-run switch into the
    /// lease policy are reclaimed first unless a hit renews them. Never
    /// read by [`ShardCore::racy_probe`], so concurrent readers are
    /// unaffected.
    lease: u64,
    /// Snapshot stamp of the payload bytes (see [`crate::snapshot`]):
    /// staged by the wrapper via [`RmaCache::stage_stamp`] when it read
    /// the bytes under the region read lock, else an inexact default that
    /// forces `multi_get` to refetch. Separate from `version`, which stays
    /// the conservative pre-read peek the coherence layer was built on.
    /// Never read by [`ShardCore::racy_probe`].
    snap: SnapStamp,
}

const NO_DESC: DescId = DescId::MAX;

/// Result of the lookup phase of a `get_c`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Full hit: the destination buffer has been filled from the cache.
    Hit,
    /// The key matched but only the first `cached_len` bytes could be
    /// served (0 when the cached layout is incompatible); the wrapper must
    /// fetch the remainder and call [`RmaCache::finish_partial`].
    PartialHit {
        /// Bytes already copied into the head of the destination buffer.
        cached_len: usize,
    },
    /// No entry: the wrapper must fetch everything and call
    /// [`RmaCache::finish_miss`].
    Miss,
}

/// Tunable parameters of one caching layer.
#[derive(Debug, Clone)]
pub struct CacheParams {
    /// Number of index slots `|I_w|`.
    pub index_entries: usize,
    /// Storage bytes `|S_w|`.
    pub storage_bytes: usize,
    /// Victim-selection scheme (Sec. III-D1); `Full` in the paper's default.
    pub victim_scheme: VictimScheme,
    /// Victim sample size `M` (16 in the paper's experiments).
    pub sample_size: usize,
    /// Cuckoo insertion iteration threshold.
    pub max_insert_iters: usize,
    /// Maximum storage evictions attempted per miss. The paper's *weak
    /// caching* uses 1 — a constant — so that a `get_c` can never be
    /// slowed down proportionally to the number of cached entries
    /// (Sec. III-D2). Larger values trade bounded overhead for a higher
    /// insert success rate; the `abl_weak_caching` bench ablates this.
    pub max_evictions_per_miss: usize,
    /// CPU cost model for management activities.
    pub costs: CacheCostModel,
    /// RNG seed (hash functions, insertion walk, victim sampling).
    pub seed: u64,
    /// Upper bound, in bytes, on the merged extent of a coalesced
    /// nonblocking miss transfer ([`crate::CachedWindow::get_nb`]):
    /// adjacent/overlapping misses to the same target merge into one wire
    /// transfer only while the merged range stays within this bound.
    /// `0` disables coalescing entirely.
    pub max_coalesce_bytes: usize,
    /// How cached reads stay coherent with concurrent remote `put`s
    /// (see [`crate::coherence::CoherenceMode`]). `None` by default —
    /// bit-identical to the pre-coherence behaviour.
    pub coherence: crate::coherence::CoherenceMode,
    /// Number of independent cache shards (hash stripes of the
    /// [`GetKey`]). `index_entries` and `storage_bytes` are divided evenly
    /// across shards. `1` (the default) is bit-identical to the unsharded
    /// engine; larger values matter for the concurrent front
    /// ([`crate::ShardedCache`]), where each shard has its own lock and
    /// sequence counter.
    pub shards: usize,
    /// Run the policy lab ([`crate::vcache::PolicyLab`]): one tag-only
    /// shadow cache per candidate [`VictimScheme`], replaying every get
    /// and accumulating per-policy shadow hit ratios in
    /// [`CacheStats`]. Observation-only — no virtual-clock cost, no
    /// effect on the live cache — so lab-on runs are bit-identical to
    /// lab-off runs unless a controller acts on the shadow ratios.
    /// Deterministic-engine ([`RmaCache`]) only: the concurrent front's
    /// lock-free hit path cannot update shadows without taking writes.
    pub policy_lab: bool,
}

impl Default for CacheParams {
    fn default() -> Self {
        CacheParams {
            index_entries: 4096,
            storage_bytes: 4 << 20,
            victim_scheme: VictimScheme::Full,
            sample_size: 16,
            max_insert_iters: 32,
            max_evictions_per_miss: 1,
            costs: CacheCostModel::default(),
            seed: 0xC1A3,
            max_coalesce_bytes: 16 << 10,
            coherence: crate::coherence::CoherenceMode::None,
            shards: 1,
            policy_lab: false,
        }
    }
}

/// Derives shard `stripe`'s seed from a base seed. Stripe 0 keeps the base
/// unchanged so a 1-shard cache reproduces the unsharded seed streams
/// bit-for-bit; the odd multiplier decorrelates the other stripes.
fn shard_seed(base: u64, stripe: usize) -> u64 {
    base.wrapping_add((stripe as u64).wrapping_mul(0xA24B_AED4_963E_E407))
}

/// Cross-shard engine state: statistics, the get sequence counter, the
/// running average get size and the two cost accumulators. Kept outside
/// [`ShardCore`] so the single-threaded engine preserves the exact global
/// counter/charge ordering of the unsharded implementation (the concurrent
/// front instead gives every shard its own context and merges at read
/// time).
#[derive(Debug, Default)]
pub(crate) struct EngineCtx {
    pub(crate) stats: CacheStats,
    pub(crate) seq: u64,
    pub(crate) ags: f64,
    pub(crate) uncharged_ns: f64,
    pub(crate) deferred_ns: f64,
    /// Prefix length served from cache by the most recent PartialHit
    /// lookup (consumed by `finish_partial` for byte accounting).
    pub(crate) last_partial_prefix: usize,
    /// Snapshot stamp staged by [`RmaCache::stage_stamp`] for the payload
    /// about to be handed to `finish_miss`/`finish_partial`; consumed (or
    /// discarded, on a failed insert) by that call. `None` — the default
    /// for every caller that does not track stamps — yields inexact
    /// entries, which the snapshot layer simply refetches.
    pub(crate) staged_stamp: Option<SnapStamp>,
    /// Resident entries per target rank (grown on demand), so coherence
    /// passes can skip targets with nothing cached in O(1).
    pub(crate) target_counts: Vec<u32>,
    /// The policy lab's shadow caches ([`CacheParams::policy_lab`]);
    /// `None` when the lab is off (the default, and always for the
    /// concurrent front's per-shard contexts).
    pub(crate) lab: Option<PolicyLab>,
}

impl EngineCtx {
    pub(crate) fn new() -> Self {
        EngineCtx::default()
    }

    fn charge(&mut self, ns: f64) {
        self.uncharged_ns += ns;
    }

    fn defer(&mut self, ns: f64) {
        self.deferred_ns += ns;
    }
}

/// Outcome of a bounds-checked, panic-free cache probe. `Retry` means the
/// observed state was not servable as a clean hit or miss (torn or
/// transient under a concurrent writer); the seqlock reader falls back to
/// the locked path, the locked reader treats it as a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ProbeResult {
    /// `dst` was filled from the cache (valid only if the shard's sequence
    /// counter validates afterwards).
    Hit,
    /// No servable entry for the key at the requested length.
    Miss,
    /// Inconclusive: state looked mid-mutation or not directly servable.
    Retry,
}

/// One cache shard: an independent Cuckoo index, entry slab, storage arena
/// and the per-shard eviction state (recency index, victim-sampling RNG).
/// All methods borrow the shared [`CacheParams`] and an [`EngineCtx`] so a
/// single context can span shards (deterministic engine) or be per-shard
/// (concurrent front).
#[derive(Debug)]
pub(crate) struct ShardCore {
    pub(crate) index: CuckooIndex,
    pub(crate) storage: Storage,
    entries: Vec<Option<Entry>>,
    spare: Vec<EntryId>,
    pub(crate) cached_count: usize,
    pending: Vec<EntryId>,
    rng: SmallRng,
    /// The shard's *live* victim policy. Starts as
    /// [`CacheParams::victim_scheme`] and changes only through
    /// [`ShardCore::set_policy`] — per shard, so the concurrent front can
    /// apply a switch under each shard's existing write lock.
    policy: VictimScheme,
    /// The lease predictor ([`crate::lease`]), allocated when the live
    /// policy is (or becomes) [`VictimScheme::Lease`] and kept across
    /// invalidations/switches: learned reuse distances describe the
    /// stream, not the resident set.
    lease: Option<LeaseTable>,
    /// Seed for a lazily created lease table (stripe-decorellated).
    lease_seed: u64,
    /// Recency index (`last` -> entry), maintained only for
    /// [`VictimScheme::ExactLru`]. `last` values are unique: each get
    /// touches at most one entry.
    recency: BTreeMap<u64, EntryId>,
    /// When set, the entry slab was preallocated and must never grow past
    /// its capacity (the concurrent front hands out raw views of it to
    /// optimistic readers, so a reallocating push would be a use-after-free
    /// for them, not just a logic bug).
    pin_slab: bool,
}

impl ShardCore {
    /// A fresh shard for hash stripe `stripe` of a `params.shards`-way
    /// cache. With `pin_slab` the entry slab is preallocated to its
    /// worst-case population (index capacity + the transient insert + one
    /// spare) so it never reallocates; required by the concurrent front.
    pub(crate) fn new(params: &CacheParams, stripe: usize, pin_slab: bool) -> Self {
        let n = params.shards.max(1);
        let index_cap = (params.index_entries / n).max(1);
        let index = CuckooIndex::new(
            index_cap,
            params.max_insert_iters,
            shard_seed(params.seed, stripe),
        );
        let storage = Storage::new(params.storage_bytes / n);
        let rng = SmallRng::seed_from_u64(shard_seed(params.seed ^ 0x5EED, stripe));
        let entries = if pin_slab {
            Vec::with_capacity(index_cap + 2)
        } else {
            Vec::new()
        };
        let lease_seed = shard_seed(params.seed ^ 0x1EA5_E000, stripe);
        let lease = (params.victim_scheme == VictimScheme::Lease)
            .then(|| LeaseTable::new(index_cap, lease_seed));
        ShardCore {
            index,
            storage,
            entries,
            spare: Vec::new(),
            cached_count: 0,
            pending: Vec::new(),
            rng,
            policy: params.victim_scheme,
            lease,
            lease_seed,
            recency: BTreeMap::new(),
            pin_slab,
        }
    }

    /// The shard's live victim policy.
    pub(crate) fn policy(&self) -> VictimScheme {
        self.policy
    }

    /// Switches the live victim policy, rebuilding the policy-private
    /// eviction state: the recency index is reconstructed from the
    /// resident entries when switching *into* ExactLru (and dropped
    /// otherwise), and a lease table is created on first switch into
    /// Lease. Resident entries keep their metadata — inherited entries
    /// have no lease (0 = expired) and are reclaimed first unless a hit
    /// renews them. Returns whether the policy actually changed.
    pub(crate) fn set_policy(&mut self, new: VictimScheme) -> bool {
        if new == self.policy {
            return false;
        }
        self.recency.clear();
        if new == VictimScheme::ExactLru {
            for (i, slot) in self.entries.iter().enumerate() {
                if let Some(e) = slot {
                    let prev = self.recency.insert(e.last, i as EntryId);
                    debug_assert!(prev.is_none(), "recency key collision at {}", e.last);
                }
            }
        }
        if new == VictimScheme::Lease && self.lease.is_none() {
            self.lease = Some(LeaseTable::new(self.index.capacity(), self.lease_seed));
        }
        self.policy = new;
        true
    }

    fn entry(&self, id: EntryId) -> &Entry {
        // xlint: allow(no-unwrap) invariant: ids are only handed out for live slots
        self.entries[id as usize].as_ref().expect("stale entry id")
    }

    fn entry_mut(&mut self, id: EntryId) -> &mut Entry {
        // xlint: allow(no-unwrap) invariant: ids are only handed out for live slots
        self.entries[id as usize].as_mut().expect("stale entry id")
    }

    fn alloc_entry(&mut self, cx: &mut EngineCtx, e: Entry) -> EntryId {
        let t = e.key.target as usize;
        if t >= cx.target_counts.len() {
            cx.target_counts.resize(t + 1, 0);
        }
        cx.target_counts[t] += 1;
        if let Some(id) = self.spare.pop() {
            self.entries[id as usize] = Some(e);
            id
        } else {
            debug_assert!(
                !self.pin_slab || self.entries.len() < self.entries.capacity(),
                "pinned entry slab would reallocate"
            );
            self.entries.push(Some(e));
            (self.entries.len() - 1) as EntryId
        }
    }

    fn lru_enabled(&self) -> bool {
        self.policy == VictimScheme::ExactLru
    }

    /// Moves `id` from recency position `old` to `new` (ExactLru only).
    fn touch_recency(
        &mut self,
        p: &CacheParams,
        cx: &mut EngineCtx,
        id: EntryId,
        old: u64,
        new: u64,
    ) {
        if self.lru_enabled() && old != new {
            self.recency.remove(&old);
            let prev = self.recency.insert(new, id);
            debug_assert!(prev.is_none(), "recency key collision at {new}");
            // The recency update is real work on every hit: the price of
            // exact LRU the paper's sampled scheme avoids.
            cx.charge(p.costs.insert_step_ns);
        }
    }

    /// Used fraction of this shard's storage arena — the lease table's
    /// feedback signal for steering the short/long mix.
    fn storage_pressure(&self) -> f64 {
        let cap = self.storage.capacity();
        if cap == 0 {
            0.0
        } else {
            1.0 - self.storage.free_bytes() as f64 / cap as f64
        }
    }

    /// Under the lease policy: records this access in the reuse predictor
    /// and assigns a fresh lease, returning the absolute expiry. Charged
    /// like a recency update — lease maintenance is real per-access work,
    /// the price ExactLru pays for its recency index.
    fn assign_lease(&mut self, p: &CacheParams, cx: &mut EngineCtx, key: &GetKey) -> u64 {
        let pressure = self.storage_pressure();
        match self.lease.as_mut() {
            Some(t) => {
                cx.charge(p.costs.insert_step_ns);
                t.observe_and_assign(key.stripe(), cx.seq, pressure)
            }
            None => 0,
        }
    }

    /// Renews `id`'s lease on a hit (lease policy only).
    fn renew_lease(&mut self, p: &CacheParams, cx: &mut EngineCtx, id: EntryId, key: &GetKey) {
        if self.policy != VictimScheme::Lease {
            return;
        }
        let expiry = self.assign_lease(p, cx, key);
        self.entry_mut(id).lease = expiry;
    }

    fn drop_entry(&mut self, _p: &CacheParams, cx: &mut EngineCtx, id: EntryId) {
        if self.lru_enabled() {
            let last = self.entry(id).last;
            self.recency.remove(&last);
        }
        // xlint: allow(no-unwrap) invariant: callers drop an id at most once
        let e = self.entries[id as usize].take().expect("double entry drop");
        cx.target_counts[e.key.target as usize] -= 1;
        match e.state {
            EntryState::Cached => self.cached_count -= 1,
            // A PENDING entry can be dropped when a Cuckoo displacement
            // chain leaves it homeless; forget its scheduled promotion.
            EntryState::Pending => self.pending.retain(|&p| p != id),
        }
        self.spare.push(id);
    }

    /// Phase 1 of a `get_c`, shard-local (see [`RmaCache::process_lookup`]).
    pub(crate) fn process_lookup(
        &mut self,
        p: &CacheParams,
        cx: &mut EngineCtx,
        key: GetKey,
        sig: &LayoutSig,
        dst: &mut [u8],
    ) -> Lookup {
        let size = sig.size();
        debug_assert_eq!(dst.len(), size);
        cx.seq += 1;
        // Cumulative mean of processed get sizes (the paper's ags).
        cx.ags += (size as f64 - cx.ags) / cx.seq as f64;
        cx.charge(p.costs.lookup_ns);
        // Policy lab: replay this get through the shadow caches.
        // Observation-only — shadow counters move, nothing else does, and
        // no virtual-clock cost is charged (overhead is priced separately
        // from `shadow_slot_visits` by the benches).
        if let Some(lab) = cx.lab.as_mut() {
            lab.observe(key.stripe(), size, cx.seq, cx.ags, &mut cx.stats);
        }

        let Some(id) = self.index.lookup(&key) else {
            return Lookup::Miss;
        };
        debug_assert_eq!(self.entry(id).key, key, "index returned a foreign entry");
        let seq = cx.seq;
        let (full, cached_len) = {
            let e = self.entry(id);
            match (&e.sig, sig) {
                (LayoutSig::Contig(have), LayoutSig::Contig(want)) => {
                    if want <= have {
                        (true, *want)
                    } else if e.state == EntryState::Cached {
                        (false, *have)
                    } else {
                        // Partial hit on a PENDING entry: nothing servable
                        // yet (its fill is deferred to the epoch close).
                        (false, 0)
                    }
                }
                (LayoutSig::Blocks(have), LayoutSig::Blocks(want)) if have == want => (true, size),
                _ => (false, 0),
            }
        };

        if full {
            let state = self.entry(id).state;
            let desc = self.entry(id).desc;
            let old_last = self.entry(id).last;
            dst.copy_from_slice(self.storage.read(desc, size));
            self.entry_mut(id).last = seq;
            self.touch_recency(p, cx, id, old_last, seq);
            self.renew_lease(p, cx, id, &key);
            let copy = p.costs.memcpy_cost(size);
            match state {
                // CACHED: the copy happens right now.
                EntryState::Cached => cx.charge(copy),
                // PENDING: the paper copies at the epoch closure.
                EntryState::Pending => cx.defer(copy),
            }
            cx.stats.record(AccessType::Hit);
            cx.stats.bytes_from_cache += size as u64;
            Lookup::Hit
        } else {
            if cached_len > 0 {
                let desc = self.entry(id).desc;
                dst[..cached_len].copy_from_slice(self.storage.read(desc, cached_len));
                let copy = p.costs.memcpy_cost(cached_len);
                cx.charge(copy);
                cx.stats.bytes_from_cache += cached_len as u64;
            }
            let old_last = self.entry(id).last;
            self.entry_mut(id).last = seq;
            self.touch_recency(p, cx, id, old_last, seq);
            self.renew_lease(p, cx, id, &key);
            cx.stats.partial_hits += 1;
            cx.last_partial_prefix = cached_len;
            Lookup::PartialHit { cached_len }
        }
    }

    /// Phase 2 after a miss, shard-local (see [`RmaCache::finish_miss`]).
    pub(crate) fn finish_miss(
        &mut self,
        p: &CacheParams,
        cx: &mut EngineCtx,
        key: GetKey,
        sig: LayoutSig,
        data: &[u8],
        version: u64,
    ) -> AccessType {
        let size = sig.size();
        debug_assert_eq!(data.len(), size);
        cx.stats.bytes_from_network += size as u64;
        // Lease policy: the miss is an access too — record it in the
        // reuse predictor (distances across evictions are exactly what
        // the histogram needs) and lease the new entry up front.
        let lease = if self.policy == VictimScheme::Lease {
            self.assign_lease(p, cx, &key)
        } else {
            0
        };
        let snap = cx.staged_stamp.take().unwrap_or(SnapStamp {
            version,
            ts: 0,
            exact: false,
        });
        let id = self.alloc_entry(
            cx,
            Entry {
                key,
                sig,
                size,
                state: EntryState::Pending,
                desc: NO_DESC,
                off: 0,
                last: cx.seq,
                version,
                lease,
                snap,
            },
        );

        let (inserted, conflicted) = self.insert_with_path_eviction(p, cx, key, id);
        if !inserted {
            self.drop_entry(p, cx, id);
            cx.stats.record(AccessType::Failed);
            return AccessType::Failed;
        }

        let (desc, evicted_for_space) = self.alloc_with_eviction(p, cx, size, id, None);
        let class = match desc {
            Some(d) => {
                self.storage.write(d, data);
                let off = self.storage.offset(d);
                {
                    let e = self.entry_mut(id);
                    e.desc = d;
                    e.off = off;
                }
                self.pending.push(id);
                if self.lru_enabled() {
                    let last = self.entry(id).last;
                    let prev = self.recency.insert(last, id);
                    debug_assert!(prev.is_none(), "recency key collision at {last}");
                }
                let copy = p.costs.memcpy_cost(size);
                cx.defer(copy);
                if conflicted {
                    AccessType::Conflicting
                } else if evicted_for_space {
                    AccessType::Capacity
                } else {
                    AccessType::Direct
                }
            }
            None => {
                // Weak caching: give up, the get itself already succeeded.
                self.index.remove(&key);
                self.drop_entry(p, cx, id);
                AccessType::Failed
            }
        };
        cx.stats.record(class);
        class
    }

    /// Phase 2 after a partial hit, shard-local (see
    /// [`RmaCache::finish_partial`]).
    pub(crate) fn finish_partial(
        &mut self,
        p: &CacheParams,
        cx: &mut EngineCtx,
        key: GetKey,
        sig: LayoutSig,
        data: &[u8],
        version: u64,
    ) -> AccessType {
        let size = sig.size();
        debug_assert_eq!(data.len(), size);
        let Some(id) = self.index.lookup(&key) else {
            // The entry vanished (should not happen between phases). The
            // staged stamp, if any, rides along into the miss path.
            return self.finish_miss(p, cx, key, sig, data, version);
        };
        // Taken unconditionally so a failed extension cannot leak this
        // call's stamp into a later, unrelated finish.
        let staged = cx.staged_stamp.take();
        // The wrapper fetched everything beyond the served prefix (which is
        // zero for incompatible layouts).
        cx.stats.bytes_from_network += (size as u64).saturating_sub(cx.last_partial_prefix as u64);
        cx.last_partial_prefix = 0;

        if self.entry(id).state == EntryState::Pending {
            // Cannot touch a pending entry's storage; leave it as-is.
            cx.stats.record(AccessType::Failed);
            return AccessType::Failed;
        }

        // Allocate the larger region first so failure leaves the old entry
        // intact; exclude the entry itself from victim selection.
        let (desc, evicted_for_space) = self.alloc_with_eviction(p, cx, size, id, Some(id));
        let class = match desc {
            Some(d) => {
                let old = self.entry(id).desc;
                self.storage.free(old);
                cx.charge(p.costs.alloc_ns);
                self.storage.write(d, data);
                let off = self.storage.offset(d);
                {
                    let e = self.entry_mut(id);
                    e.desc = d;
                    e.off = off;
                    e.size = size;
                    e.sig = sig;
                    e.state = EntryState::Pending;
                    e.version = e.version.min(version);
                    // Head bytes carry the old entry's stamp, tail bytes
                    // the staged one; the mix is exact only when both are
                    // exact at the *same* version (no write in between).
                    e.snap = match staged {
                        Some(s) if s.exact && e.snap.exact && s.version == e.snap.version => s,
                        Some(s) => SnapStamp {
                            version: e.snap.version.min(s.version),
                            ts: e.snap.ts.min(s.ts),
                            exact: false,
                        },
                        None => SnapStamp {
                            version: e.snap.version.min(version),
                            ts: 0,
                            exact: false,
                        },
                    };
                }
                self.cached_count -= 1;
                self.pending.push(id);
                let copy = p.costs.memcpy_cost(size);
                cx.defer(copy);
                if evicted_for_space {
                    AccessType::Capacity
                } else {
                    AccessType::Direct
                }
            }
            None => AccessType::Failed,
        };
        cx.stats.record(class);
        class
    }

    /// Cuckoo insertion with the paper's conflicting-access handling: a
    /// cycle evicts the lowest-score CACHED entry on the insertion path and
    /// retries. Returns `(inserted, conflicted)`.
    fn insert_with_path_eviction(
        &mut self,
        p: &CacheParams,
        cx: &mut EngineCtx,
        key: GetKey,
        id: EntryId,
    ) -> (bool, bool) {
        const MAX_RETRIES: usize = 4;
        let mut conflicted = false;
        let mut cur = (key, id);
        for attempt in 0..MAX_RETRIES {
            match self.index.insert(cur.0, cur.1) {
                InsertOutcome::Placed { steps } => {
                    cx.charge(p.costs.insert_step_ns * (steps + 1) as f64);
                    return (true, conflicted);
                }
                InsertOutcome::Cycle { homeless, path } => {
                    conflicted = true;
                    cx.charge(p.costs.insert_step_ns * path.len() as f64);
                    if attempt + 1 == MAX_RETRIES {
                        return self.resolve_homeless(p, cx, homeless, id, conflicted);
                    }
                    // Victim: lowest score among CACHED entries on the path.
                    let mut best: Option<(usize, EntryId, f64)> = None;
                    for &slot in &path {
                        if let Some((_k, eid)) = self.index.slot(slot) {
                            if eid == id {
                                continue;
                            }
                            let e = self.entry(eid);
                            if e.state != EntryState::Cached {
                                continue;
                            }
                            let s = self.entry_score(p, cx, eid);
                            if best.is_none_or(|(_, _, bs)| s < bs) {
                                best = Some((slot, eid, s));
                            }
                        }
                    }
                    match best {
                        Some((slot, victim, _)) => {
                            self.evict_resident(p, cx, slot, victim);
                            cur = homeless;
                        }
                        None => {
                            return self.resolve_homeless(p, cx, homeless, id, conflicted);
                        }
                    }
                }
            }
        }
        unreachable!("loop returns on the last attempt")
    }

    fn resolve_homeless(
        &mut self,
        p: &CacheParams,
        cx: &mut EngineCtx,
        homeless: (GetKey, EntryId),
        new_id: EntryId,
        conflicted: bool,
    ) -> (bool, bool) {
        if homeless.1 == new_id {
            // The new entry itself could not be placed; nothing to undo.
            (false, conflicted)
        } else {
            // The new key is placed; the displaced resident is dropped
            // (it lost its slot and path eviction found no better victim).
            self.free_entry_storage(p, cx, homeless.1);
            self.drop_entry(p, cx, homeless.1);
            (true, conflicted)
        }
    }

    fn free_entry_storage(&mut self, p: &CacheParams, cx: &mut EngineCtx, id: EntryId) {
        let desc = self.entry(id).desc;
        if desc != NO_DESC {
            self.storage.free(desc);
            cx.charge(p.costs.alloc_ns);
        }
    }

    fn entry_score(&self, _p: &CacheParams, cx: &EngineCtx, id: EntryId) -> f64 {
        let e = self.entry(id);
        if self.policy == VictimScheme::Lease {
            // Remaining lease under the get-sequence clock: expired
            // entries go negative and are reclaimed most-expired-first;
            // unexpired ones fall back to least-lease-left. Used on both
            // the capacity and the conflicting (Cuckoo path) victim
            // scans, so one comparison rule governs all lease evictions.
            return e.lease as f64 - cx.seq as f64;
        }
        let r_t = temporal_score(e.last, cx.seq);
        let r_p = positional_score(cx.ags, self.storage.adjacent_free(e.desc));
        score(self.policy, r_p, r_t)
    }

    /// Removes a resident entry found at `slot` and releases its storage.
    fn evict_resident(&mut self, p: &CacheParams, cx: &mut EngineCtx, slot: usize, id: EntryId) {
        let removed = self.index.remove_slot(slot);
        debug_assert!(matches!(removed, Some((_, e)) if e == id));
        if self.policy == VictimScheme::Lease && self.entry(id).lease <= cx.seq {
            cx.stats.lease_expiries += 1;
        }
        self.free_entry_storage(p, cx, id);
        self.drop_entry(p, cx, id);
    }

    /// Best-fit allocation with up to `max_evictions_per_miss`
    /// capacity-eviction attempts on failure (1 = the paper's weak
    /// caching).
    fn alloc_with_eviction(
        &mut self,
        p: &CacheParams,
        cx: &mut EngineCtx,
        size: usize,
        id: EntryId,
        exclude: Option<EntryId>,
    ) -> (Option<DescId>, bool) {
        cx.charge(p.costs.alloc_ns);
        if let Some(d) = self.storage.alloc(size, id) {
            return (Some(d), false);
        }
        let budget = p.max_evictions_per_miss.max(1);
        for _ in 0..budget {
            if !self.run_capacity_eviction(p, cx, exclude) {
                return (None, true);
            }
            cx.charge(p.costs.alloc_ns);
            if let Some(d) = self.storage.alloc(size, id) {
                return (Some(d), true);
            }
        }
        (None, true)
    }

    /// The sampled victim selection of Sec. III-D: scan at least `M`
    /// consecutive index slots from a random start (continuing until a
    /// candidate appears), evict the lowest-score CACHED entry.
    fn run_capacity_eviction(
        &mut self,
        p: &CacheParams,
        cx: &mut EngineCtx,
        exclude: Option<EntryId>,
    ) -> bool {
        if self.lru_enabled() {
            return self.run_exact_lru_eviction(p, cx, exclude);
        }
        let cap = self.index.capacity();
        let start = self.rng.gen_range(0..cap);
        let m = p.sample_size.max(1);
        let mut visited = 0usize;
        let mut nonempty = 0u64;
        let mut best: Option<(usize, EntryId, f64)> = None;
        while visited < cap {
            let pos = (start + visited) % cap;
            visited += 1;
            if let Some((_k, eid)) = self.index.slot(pos) {
                nonempty += 1;
                let evictable = Some(eid) != exclude && self.entry(eid).state == EntryState::Cached;
                if evictable {
                    let s = self.entry_score(p, cx, eid);
                    if best.is_none_or(|(_, _, bs)| s < bs) {
                        best = Some((pos, eid, s));
                    }
                }
            }
            if visited >= m && best.is_some() {
                break;
            }
        }
        cx.stats.evictions += 1;
        cx.stats.visited_slots += visited as u64;
        cx.stats.visited_nonempty += nonempty;
        cx.charge(p.costs.evict_visit_ns * visited as f64);
        match best {
            Some((slot, victim, _)) => {
                self.evict_resident(p, cx, slot, victim);
                true
            }
            None => false,
        }
    }

    /// Exact-LRU capacity eviction: walk the recency index oldest-first
    /// and evict the first CACHED (non-excluded) entry.
    fn run_exact_lru_eviction(
        &mut self,
        p: &CacheParams,
        cx: &mut EngineCtx,
        exclude: Option<EntryId>,
    ) -> bool {
        let mut victim = None;
        let mut visited = 0u64;
        for (_, &id) in self.recency.iter() {
            visited += 1;
            if Some(id) != exclude && self.entry(id).state == EntryState::Cached {
                victim = Some(id);
                break;
            }
        }
        cx.stats.evictions += 1;
        cx.stats.visited_slots += visited;
        cx.stats.visited_nonempty += visited;
        cx.charge(p.costs.evict_visit_ns * visited as f64);
        match victim {
            Some(id) => {
                let key = self.entry(id).key;
                let removed = self.index.remove(&key);
                debug_assert_eq!(removed, Some(id));
                self.free_entry_storage(p, cx, id);
                self.drop_entry(p, cx, id);
                true
            }
            None => false,
        }
    }

    /// Promotes every PENDING entry to CACHED (the per-shard half of the
    /// epoch-closure hook; cost charging stays with the caller).
    pub(crate) fn promote_pending(&mut self) {
        let pending = std::mem::take(&mut self.pending);
        for id in pending {
            // An entry may have been evicted while pending? No: pending
            // entries are excluded from eviction, so it must still exist.
            let e = self.entry_mut(id);
            debug_assert_eq!(e.state, EntryState::Pending);
            e.state = EntryState::Cached;
            self.cached_count += 1;
        }
    }

    /// Removes `key`'s resident entry if present, releasing its storage.
    /// The concurrent front uses this to refresh an entry in place (its
    /// Cuckoo index forbids duplicate keys).
    pub(crate) fn remove_key(&mut self, p: &CacheParams, cx: &mut EngineCtx, key: &GetKey) -> bool {
        match self.index.remove(key) {
            Some(id) => {
                self.free_entry_storage(p, cx, id);
                self.drop_entry(p, cx, id);
                true
            }
            None => false,
        }
    }

    /// Shard-local half of [`RmaCache::invalidate_range`].
    pub(crate) fn invalidate_range(
        &mut self,
        p: &CacheParams,
        cx: &mut EngineCtx,
        target: u32,
        lo: u64,
        hi: u64,
    ) -> usize {
        let cap = self.index.capacity();
        cx.charge(p.costs.evict_visit_ns * cap as f64);
        let mut victims = Vec::new();
        for slot in 0..cap {
            if let Some((key, id)) = self.index.slot(slot) {
                if key.target != target {
                    continue;
                }
                let e = self.entry(id);
                let e_lo = key.disp;
                let e_hi = key.disp + e.size as u64;
                if e_lo < hi && lo < e_hi {
                    victims.push((slot, id));
                }
            }
        }
        let dropped = victims.len();
        for (slot, id) in victims {
            self.evict_resident(p, cx, slot, id);
        }
        dropped
    }

    /// Shard-local half of [`RmaCache::invalidate_target_stale`].
    pub(crate) fn invalidate_target_stale(
        &mut self,
        p: &CacheParams,
        cx: &mut EngineCtx,
        target: u32,
        version: u64,
    ) -> usize {
        let cap = self.index.capacity();
        cx.charge(p.costs.evict_visit_ns * cap as f64);
        let mut victims = Vec::new();
        for slot in 0..cap {
            if let Some((key, id)) = self.index.slot(slot) {
                if key.target == target && self.entry(id).version != version {
                    victims.push((slot, id));
                }
            }
        }
        let dropped = victims.len();
        for (slot, id) in victims {
            self.evict_resident(p, cx, slot, id);
        }
        dropped
    }

    /// Shard-local half of [`RmaCache::invalidate_overlapping_stale`].
    pub(crate) fn invalidate_overlapping_stale(
        &mut self,
        p: &CacheParams,
        cx: &mut EngineCtx,
        target: u32,
        ranges: &[(u64, u64, u64)],
    ) -> usize {
        let cap = self.index.capacity();
        cx.charge(p.costs.evict_visit_ns * cap as f64);
        let mut victims = Vec::new();
        for slot in 0..cap {
            if let Some((key, id)) = self.index.slot(slot) {
                if key.target != target {
                    continue;
                }
                let e = self.entry(id);
                let e_lo = key.disp;
                let e_hi = key.disp + e.size as u64;
                let stale = ranges
                    .iter()
                    .any(|&(lo, hi, v)| e_lo < hi && lo < e_hi && e.version < v);
                if stale {
                    victims.push((slot, id));
                }
            }
        }
        let dropped = victims.len();
        for (slot, id) in victims {
            self.evict_resident(p, cx, slot, id);
        }
        dropped
    }

    /// Drops every resident entry, resetting index, storage and slab. The
    /// recency index is cleared too: after the slab resets, stale recency
    /// ids would alias re-issued entry ids and corrupt ExactLru victim
    /// order.
    pub(crate) fn clear_all(&mut self) {
        self.index.clear();
        self.storage.clear();
        self.entries.clear();
        self.spare.clear();
        self.pending.clear();
        self.recency.clear();
        self.cached_count = 0;
    }

    /// Replaces the index (reseeded from `seed_base`) and storage for an
    /// adaptive resize, clearing all residents. Keeps the victim-sampling
    /// RNG stream, exactly like the unsharded engine's resize did.
    fn rebuild(&mut self, params: &CacheParams, stripe: usize, seed_base: u64) {
        let n = params.shards.max(1);
        self.index = CuckooIndex::new(
            (params.index_entries / n).max(1),
            params.max_insert_iters,
            shard_seed(seed_base, stripe),
        );
        self.storage = Storage::new(params.storage_bytes / n);
        self.entries.clear();
        self.spare.clear();
        self.pending.clear();
        self.recency.clear();
        self.cached_count = 0;
    }

    /// Bounds-checked, panic-free probe for the concurrent hit path. Safe
    /// to call on state that a writer is mutating concurrently (a
    /// *seqlock racy read*): every access is bounds-checked, payload bytes
    /// are copied via the cached region offset (never through the
    /// descriptor list, whose links a writer may be rewiring), and any
    /// state that looks mid-mutation yields [`ProbeResult::Retry`]. A torn
    /// read can still produce a wrong `Hit`/`Miss` — the caller MUST
    /// validate the shard's sequence counter afterwards and discard the
    /// result on mismatch.
    pub(crate) fn racy_probe(&self, key: &GetKey, dst: &mut [u8]) -> ProbeResult {
        let Some(id) = self.index.lookup(key) else {
            return ProbeResult::Miss;
        };
        let Some(Some(e)) = self.entries.get(id as usize) else {
            return ProbeResult::Retry;
        };
        if e.key != *key || e.state != EntryState::Cached || e.desc == NO_DESC {
            return ProbeResult::Retry;
        }
        let have = match &e.sig {
            LayoutSig::Contig(n) => *n,
            LayoutSig::Blocks(_) => return ProbeResult::Retry,
        };
        if dst.len() > have {
            return ProbeResult::Miss;
        }
        match self.storage.bytes_at(e.off, dst.len()) {
            Some(src) => {
                dst.copy_from_slice(src);
                ProbeResult::Hit
            }
            None => ProbeResult::Retry,
        }
    }
}

/// The caching layer state machine for one window.
///
/// # Examples
///
/// Driving the engine directly (without a simulator window) — one miss,
/// one epoch close, one hit:
///
/// ```
/// use clampi::cache::{CacheParams, LayoutSig, Lookup, RmaCache};
/// use clampi::index::GetKey;
///
/// let mut cache = RmaCache::new(CacheParams::default());
/// let key = GetKey { target: 3, disp: 4096 };
/// let sig = LayoutSig::Contig(64);
/// let payload = [7u8; 64];
///
/// let mut dst = [0u8; 64];
/// assert_eq!(cache.process_lookup(key, &sig, &mut dst), Lookup::Miss);
/// cache.finish_miss(key, sig.clone(), &payload, 0); // caller fetched `payload`
/// cache.epoch_close();                           // PENDING -> CACHED
///
/// assert_eq!(cache.process_lookup(key, &sig, &mut dst), Lookup::Hit);
/// assert_eq!(dst, payload);
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct RmaCache {
    params: CacheParams,
    shards: Vec<ShardCore>,
    cx: EngineCtx,
    rebuilds: u64,
    resize_log: Vec<ResizeEvent>,
}

/// One adaptive resize, recorded for figure annotations and debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResizeEvent {
    /// Get sequence number at which the resize happened.
    pub at_seq: u64,
    /// New `|I_w|`.
    pub index_entries: usize,
    /// New `|S_w|`.
    pub storage_bytes: usize,
}

impl RmaCache {
    /// A fresh cache with the given parameters.
    pub fn new(params: CacheParams) -> Self {
        let n = params.shards.max(1);
        let shards = (0..n).map(|s| ShardCore::new(&params, s, false)).collect();
        let mut cx = EngineCtx::new();
        if params.policy_lab {
            cx.lab = Some(PolicyLab::new(
                params.index_entries,
                params.storage_bytes,
                params.sample_size,
                params.seed,
            ));
        }
        RmaCache {
            shards,
            cx,
            rebuilds: 0,
            resize_log: Vec::new(),
            params,
        }
    }

    /// The live eviction policy.
    pub fn victim_scheme(&self) -> VictimScheme {
        self.params.victim_scheme
    }

    /// Switches the live eviction policy without dropping residents.
    ///
    /// Per-shard bookkeeping is rebuilt as needed (ExactLru's recency
    /// index is reconstructed from resident `last` stamps; a switch into
    /// Lease lazily builds the reuse predictor). Entries inherited by a
    /// switch into Lease carry `lease == 0` (already expired), so they are
    /// reclaimed first unless the stream renews them — a deliberately
    /// conservative handoff. Returns `true` if the policy actually
    /// changed; no-op switches cost nothing and are not counted.
    pub fn set_victim_scheme(&mut self, new: VictimScheme) -> bool {
        let mut changed = false;
        for sh in &mut self.shards {
            changed |= sh.set_policy(new);
        }
        if changed {
            self.params.victim_scheme = new;
            self.cx.stats.policy_switches += 1;
            self.cx.stats.adjustments += 1;
            self.cx.charge(self.params.costs.epoch_hook_ns);
        }
        changed
    }

    /// Current parameters.
    pub fn params(&self) -> &CacheParams {
        &self.params
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CacheStats {
        &self.cx.stats
    }

    /// The get sequence counter (index into the paper's `C_w.G`).
    pub fn seq(&self) -> u64 {
        self.cx.seq
    }

    /// The running average get size `C_w.ags`.
    pub fn avg_get_size(&self) -> f64 {
        self.cx.ags
    }

    /// Occupied fraction of the storage buffer (Fig. 10's y-axis).
    pub fn occupancy(&self) -> f64 {
        let capacity: usize = self.shards.iter().map(|s| s.storage.capacity()).sum();
        if capacity == 0 {
            0.0
        } else {
            let occupied: usize = self.shards.iter().map(|s| s.storage.occupied_bytes()).sum();
            occupied as f64 / capacity as f64
        }
    }

    /// Free bytes in the storage buffer.
    pub fn free_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.storage.free_bytes()).sum()
    }

    /// Number of resident (pending + cached) entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.index.len()).sum()
    }

    /// Whether no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.index.is_empty())
    }

    /// Drains the accumulated management CPU time (nanoseconds) so the
    /// wrapper can charge it to the rank's virtual clock.
    pub fn take_cost(&mut self) -> f64 {
        std::mem::take(&mut self.cx.uncharged_ns)
    }

    /// The shard responsible for `key` (`stripe mod shards`).
    fn shard_idx(&self, key: &GetKey) -> usize {
        (key.stripe() % self.shards.len() as u64) as usize
    }

    /// Whether any resident (pending or cached) entry is keyed to
    /// `target`. O(1): lets a coherence pass skip targets with nothing
    /// cached without scanning the index.
    pub fn has_entries_for(&self, target: u32) -> bool {
        self.cx
            .target_counts
            .get(target as usize)
            .is_some_and(|&c| c > 0)
    }

    /// Phase 1 of a `get_c`: classify against the index, serving full hits
    /// (and the head of contiguous partial hits) into `dst`.
    ///
    /// `dst.len()` must equal `sig.size()`.
    pub fn process_lookup(&mut self, key: GetKey, sig: &LayoutSig, dst: &mut [u8]) -> Lookup {
        let i = self.shard_idx(&key);
        let Self {
            params, shards, cx, ..
        } = self;
        shards[i].process_lookup(params, cx, key, sig, dst)
    }

    /// Stages the snapshot stamp for the payload about to be handed to
    /// the next [`RmaCache::finish_miss`] / [`RmaCache::finish_partial`]
    /// call, which consumes it (or discards it on failure). Callers that
    /// never stage get inexact entries, which the snapshot layer refetches
    /// — so stamp-blind paths (traces, the concurrent front's insert)
    /// stay correct without changes.
    pub fn stage_stamp(&mut self, stamp: SnapStamp) {
        self.cx.staged_stamp = Some(stamp);
    }

    /// Read-only probe of the snapshot stamp of the resident entry for
    /// `key` (`None` when nothing is resident). Free in virtual time,
    /// like the index peek it is.
    pub fn snap_stamp(&self, key: &GetKey) -> Option<SnapStamp> {
        let sh = &self.shards[self.shard_idx(key)];
        sh.index.lookup(key).map(|id| sh.entry(id).snap)
    }

    /// Phase 2 after a [`Lookup::Miss`]: `data` is the fetched payload;
    /// attempt to cache it. Returns the access classification.
    ///
    /// `version` is the target-region write version observed *before* the
    /// payload bytes were read (pass 0 when versions are not tracked); the
    /// coherence layer uses it to decide staleness later.
    pub fn finish_miss(
        &mut self,
        key: GetKey,
        sig: LayoutSig,
        data: &[u8],
        version: u64,
    ) -> AccessType {
        let i = self.shard_idx(&key);
        let Self {
            params, shards, cx, ..
        } = self;
        shards[i].finish_miss(params, cx, key, sig, data, version)
    }

    /// Phase 2 after a [`Lookup::PartialHit`]: `data` is the *full* payload
    /// (head served from cache, tail fetched by the wrapper). Attempts to
    /// extend (re-allocate) the existing entry; on failure the old, shorter
    /// entry stays valid (Sec. III-B: "extended only if `S_w` contains
    /// enough space").
    ///
    /// `version` is the write version observed before the tail fetch; the
    /// extended entry is stamped with the *older* of its existing version
    /// and `version` (the head bytes may predate the tail bytes, so the
    /// conservative choice is the minimum).
    pub fn finish_partial(
        &mut self,
        key: GetKey,
        sig: LayoutSig,
        data: &[u8],
        version: u64,
    ) -> AccessType {
        let i = self.shard_idx(&key);
        let Self {
            params, shards, cx, ..
        } = self;
        shards[i].finish_partial(params, cx, key, sig, data, version)
    }

    /// Epoch-closure hook: promotes PENDING entries to CACHED and charges
    /// the deferred copy costs (the paper's "data has to be explicitly
    /// copied into the cache memory at the epoch closure time").
    pub fn epoch_close(&mut self) {
        self.cx.charge(self.params.costs.epoch_hook_ns);
        let deferred = std::mem::take(&mut self.cx.deferred_ns);
        self.cx.charge(deferred);
        for sh in &mut self.shards {
            sh.promote_pending();
        }
    }

    /// Drops every resident entry whose cached bytes overlap
    /// `[lo, hi)` in `target`'s window; returns how many were dropped.
    ///
    /// This is not part of the paper's design — MPI's epoch rules make
    /// reads of concurrently written data illegal anyway — but it enables
    /// the *write-through invalidation* extension of
    /// [`crate::ClampiConfig::invalidate_on_put`], which keeps a
    /// long-lived always-cache window coherent with the issuing rank's own
    /// puts. The scan is linear in `|I_w|` (puts are assumed rare on
    /// cached windows).
    pub fn invalidate_range(&mut self, target: u32, lo: u64, hi: u64) -> usize {
        let Self {
            params, shards, cx, ..
        } = self;
        shards
            .iter_mut()
            .map(|sh| sh.invalidate_range(params, cx, target, lo, hi))
            .sum()
    }

    /// Drops every resident entry keyed to `target` whose stored version
    /// differs from `version` (the target's current write version, fetched
    /// by an `EpochValidate` coherence pass); returns how many were
    /// dropped. Entries already stamped with the current version are
    /// provably fresh and survive.
    pub fn invalidate_target_stale(&mut self, target: u32, version: u64) -> usize {
        if !self.has_entries_for(target) {
            return 0;
        }
        let Self {
            params, shards, cx, ..
        } = self;
        shards
            .iter_mut()
            .map(|sh| sh.invalidate_target_stale(params, cx, target, version))
            .sum()
    }

    /// Drops every resident entry keyed to `target` that overlaps one of
    /// the put `ranges` (`(lo, hi, version)`, half-open bytes) *and* was
    /// filled before that put (`entry.version < version`); returns how
    /// many were dropped. This is the surgical `EagerInvalidate` path: a
    /// single index scan checks each resident entry against every drained
    /// notification record.
    pub fn invalidate_overlapping_stale(
        &mut self,
        target: u32,
        ranges: &[(u64, u64, u64)],
    ) -> usize {
        if ranges.is_empty() || !self.has_entries_for(target) {
            return 0;
        }
        let Self {
            params, shards, cx, ..
        } = self;
        shards
            .iter_mut()
            .map(|sh| sh.invalidate_overlapping_stale(params, cx, target, ranges))
            .sum()
    }

    /// Drops every cached entry (transparent-mode epoch invalidation,
    /// `CLAMPI_Invalidate`, or an adaptive adjustment).
    pub fn invalidate(&mut self) {
        for sh in &mut self.shards {
            sh.clear_all();
        }
        self.cx.deferred_ns = 0.0;
        self.cx.target_counts.clear();
        self.cx.stats.invalidations += 1;
    }

    /// The adaptive resize history.
    pub fn resize_log(&self) -> &[ResizeEvent] {
        &self.resize_log
    }

    /// Replaces `|I_w|` / `|S_w|` and invalidates (adaptive adjustment).
    pub fn resize(&mut self, index_entries: usize, storage_bytes: usize) {
        self.rebuilds += 1;
        self.resize_log.push(ResizeEvent {
            at_seq: self.cx.seq,
            index_entries,
            storage_bytes,
        });
        self.params.index_entries = index_entries.max(1);
        self.params.storage_bytes = storage_bytes;
        let seed_base = self.params.seed.wrapping_add(self.rebuilds);
        for (i, sh) in self.shards.iter_mut().enumerate() {
            sh.rebuild(&self.params, i, seed_base);
        }
        self.cx.deferred_ns = 0.0;
        self.cx.target_counts.clear();
        self.cx.stats.invalidations += 1;
        self.cx.stats.adjustments += 1;
        // The shadow caches model the live geometry; a resize rebuilds
        // them empty at the new sizes, mirroring the live invalidation.
        if self.cx.lab.is_some() {
            self.cx.lab = Some(PolicyLab::new(
                self.params.index_entries,
                self.params.storage_bytes,
                self.params.sample_size,
                self.params.seed,
            ));
        }
    }

    /// Number of entries in the CACHED state.
    pub fn cached_entries(&self) -> usize {
        self.shards.iter().map(|s| s.cached_count).sum()
    }

    /// An order-independent-of-nothing, content-sensitive fingerprint of
    /// the resident cache state: every occupied index slot contributes its
    /// position (offset by the shard's slot base), key, entry state, size,
    /// and stored payload bytes to an FNV-1a hash. Two caches that went
    /// through the same sequence of state transitions fingerprint
    /// identically; any divergence in placement, classification, or bytes
    /// shows up. Used by the nonblocking-vs-blocking equivalence property
    /// test.
    pub fn content_fingerprint(&self) -> u64 {
        struct Fnv(u64);
        impl Fnv {
            fn byte(&mut self, b: u8) {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x100000001b3);
            }
            fn word(&mut self, w: u64) {
                for b in w.to_le_bytes() {
                    self.byte(b);
                }
            }
        }
        let mut h = Fnv(0xcbf29ce484222325);
        let mut slot_base = 0u64;
        for sh in &self.shards {
            for slot in 0..sh.index.capacity() {
                let Some((key, id)) = sh.index.slot(slot) else {
                    continue;
                };
                let e = sh.entry(id);
                h.word(slot_base + slot as u64);
                h.word(key.target as u64);
                h.word(key.disp);
                h.word(match e.state {
                    EntryState::Pending => 1,
                    EntryState::Cached => 2,
                });
                h.word(e.size as u64);
                if e.desc != NO_DESC {
                    for &b in sh.storage.read(e.desc, e.size) {
                        h.byte(b);
                    }
                }
            }
            slot_base += sh.index.capacity() as u64;
        }
        h.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(t: u32, d: u64) -> GetKey {
        GetKey { target: t, disp: d }
    }

    fn params(index: usize, storage: usize) -> CacheParams {
        CacheParams {
            index_entries: index,
            storage_bytes: storage,
            costs: CacheCostModel::free(),
            ..CacheParams::default()
        }
    }

    fn cache(index: usize, storage: usize) -> RmaCache {
        RmaCache::new(params(index, storage))
    }

    /// Drives a full miss-then-cache cycle with payload `data`.
    fn insert(c: &mut RmaCache, k: GetKey, data: &[u8]) -> AccessType {
        let sig = LayoutSig::Contig(data.len());
        let mut dst = vec![0u8; data.len()];
        match c.process_lookup(k, &sig, &mut dst) {
            Lookup::Miss => c.finish_miss(k, sig, data, 0),
            other => panic!("expected miss, got {other:?}"),
        }
    }

    #[test]
    fn miss_then_pending_hit_then_cached_hit() {
        let mut c = cache(64, 4096);
        let k = key(1, 0);
        let data = vec![7u8; 100];
        assert_eq!(insert(&mut c, k, &data), AccessType::Direct);

        // Same epoch: hit on the PENDING entry.
        let mut dst = vec![0u8; 100];
        assert_eq!(
            c.process_lookup(k, &LayoutSig::Contig(100), &mut dst),
            Lookup::Hit
        );
        assert_eq!(dst, data);
        assert_eq!(c.cached_entries(), 0, "still pending");

        c.epoch_close();
        assert_eq!(c.cached_entries(), 1);

        let mut dst2 = vec![0u8; 100];
        assert_eq!(
            c.process_lookup(k, &LayoutSig::Contig(100), &mut dst2),
            Lookup::Hit
        );
        assert_eq!(dst2, data);
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().direct, 1);
    }

    #[test]
    fn smaller_request_is_full_hit_on_larger_entry() {
        let mut c = cache(64, 4096);
        let k = key(0, 64);
        let data: Vec<u8> = (0..200u8).collect();
        insert(&mut c, k, &data);
        c.epoch_close();
        let mut dst = vec![0u8; 50];
        assert_eq!(
            c.process_lookup(k, &LayoutSig::Contig(50), &mut dst),
            Lookup::Hit
        );
        assert_eq!(&dst[..], &data[..50]);
    }

    #[test]
    fn larger_request_is_partial_hit_and_extends() {
        let mut c = cache(64, 8192);
        let k = key(0, 0);
        let data: Vec<u8> = (0..=99u8).collect();
        insert(&mut c, k, &data);
        c.epoch_close();

        let big: Vec<u8> = (0..=255u8).collect();
        let mut dst = vec![0u8; 256];
        match c.process_lookup(k, &LayoutSig::Contig(256), &mut dst) {
            Lookup::PartialHit { cached_len } => {
                assert_eq!(cached_len, 100);
                assert_eq!(&dst[..100], &big[..100], "prefix served from cache");
            }
            other => panic!("expected partial hit, got {other:?}"),
        }
        dst[100..].copy_from_slice(&big[100..]); // wrapper fetches the tail
        assert_eq!(
            c.finish_partial(k, LayoutSig::Contig(256), &dst, 0),
            AccessType::Direct
        );
        c.epoch_close();

        // Now the whole 256 bytes hit.
        let mut dst2 = vec![0u8; 256];
        assert_eq!(
            c.process_lookup(k, &LayoutSig::Contig(256), &mut dst2),
            Lookup::Hit
        );
        assert_eq!(dst2, big);
        assert_eq!(c.stats().partial_hits, 1);
    }

    #[test]
    fn capacity_eviction_makes_room() {
        // Storage fits exactly two 512-byte entries.
        let mut c = cache(64, 1024);
        insert(&mut c, key(0, 0), &vec![1u8; 512]);
        insert(&mut c, key(0, 1000), &vec![2u8; 512]);
        c.epoch_close();
        assert_eq!(c.free_bytes(), 0);

        let t = insert(&mut c, key(0, 2000), &vec![3u8; 512]);
        assert_eq!(t, AccessType::Capacity);
        assert_eq!(c.stats().evictions, 1);
        c.epoch_close();
        assert_eq!(c.cached_entries(), 2);
    }

    #[test]
    fn failing_access_leaves_cache_consistent() {
        // Entry bigger than the whole storage can never be cached.
        let mut c = cache(64, 256);
        let t = insert(&mut c, key(0, 0), &vec![1u8; 10_000]);
        assert_eq!(t, AccessType::Failed);
        assert!(c.is_empty());
        // And a later normal insert still works.
        assert_eq!(insert(&mut c, key(0, 64), &[2u8; 64]), AccessType::Direct);
    }

    #[test]
    fn pending_entries_are_not_evicted() {
        let mut c = cache(64, 1024);
        // Fill storage with two pending entries (no epoch close yet).
        insert(&mut c, key(0, 0), &vec![1u8; 512]);
        insert(&mut c, key(0, 1000), &vec![2u8; 512]);
        // A third insert in the same epoch: eviction cannot pick pending
        // entries, so the access fails.
        let t = insert(&mut c, key(0, 2000), &[3u8; 128]);
        assert_eq!(t, AccessType::Failed);
        c.epoch_close();
        assert_eq!(c.cached_entries(), 2, "pending entries survived");
    }

    #[test]
    fn conflicting_access_on_tiny_index() {
        // A 4-slot index overflows quickly; the engine must classify the
        // overflow as Conflicting (or fail gracefully) and stay consistent.
        let mut c = RmaCache::new(CacheParams {
            index_entries: 4,
            storage_bytes: 1 << 20,
            max_insert_iters: 8,
            costs: CacheCostModel::free(),
            ..CacheParams::default()
        });
        let mut classes = Vec::new();
        for i in 0..32u64 {
            classes.push(insert(&mut c, key(0, i * 64), &[i as u8; 64]));
            c.epoch_close();
        }
        assert!(
            classes.contains(&AccessType::Conflicting),
            "expected at least one conflicting access, got {classes:?}"
        );
        assert!(c.len() <= 4);
        // Every resident entry still serves correct data.
        let resident: Vec<(GetKey, EntryId)> =
            (0..4).filter_map(|s| c.shards[0].index.slot(s)).collect();
        for (k, _) in resident {
            let mut dst = vec![0u8; 64];
            assert_eq!(
                c.process_lookup(k, &LayoutSig::Contig(64), &mut dst),
                Lookup::Hit
            );
            assert_eq!(dst, vec![(k.disp / 64) as u8; 64]);
        }
    }

    #[test]
    fn invalidate_clears_everything() {
        let mut c = cache(64, 4096);
        insert(&mut c, key(0, 0), &[1, 2, 3]);
        c.epoch_close();
        c.invalidate();
        assert!(c.is_empty());
        assert_eq!(c.cached_entries(), 0);
        assert_eq!(c.free_bytes(), 4096);
        assert_eq!(c.stats().invalidations, 1);
        let mut dst = vec![0u8; 3];
        assert_eq!(
            c.process_lookup(key(0, 0), &LayoutSig::Contig(3), &mut dst),
            Lookup::Miss
        );
    }

    #[test]
    fn resize_counts_as_adjustment() {
        let mut c = cache(64, 4096);
        insert(&mut c, key(0, 0), &[1, 2, 3]);
        c.epoch_close();
        c.resize(128, 8192);
        assert!(c.is_empty());
        assert_eq!(c.params().index_entries, 128);
        assert_eq!(c.params().storage_bytes, 8192);
        assert_eq!(c.stats().adjustments, 1);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn costs_accumulate_and_drain() {
        let mut c = RmaCache::new(CacheParams {
            index_entries: 64,
            storage_bytes: 4096,
            ..CacheParams::default()
        });
        insert(&mut c, key(0, 0), &vec![0u8; 256]);
        let cost = c.take_cost();
        assert!(cost > 0.0, "lookup + insert + alloc must cost CPU time");
        assert_eq!(c.take_cost(), 0.0, "drained");
        // The cache-fill copy is deferred to the epoch close.
        c.epoch_close();
        let close_cost = c.take_cost();
        assert!(
            close_cost >= c.params().costs.memcpy_cost(256),
            "epoch close must charge the deferred fill copy"
        );
    }

    #[test]
    fn hit_on_cached_charges_now_but_pending_defers() {
        let mut c = RmaCache::new(CacheParams {
            index_entries: 64,
            storage_bytes: 4096,
            ..CacheParams::default()
        });
        let k = key(0, 0);
        insert(&mut c, k, &vec![0u8; 1024]);
        c.take_cost();
        // Hit while PENDING: only the lookup is charged immediately.
        let mut dst = vec![0u8; 1024];
        c.process_lookup(k, &LayoutSig::Contig(1024), &mut dst);
        let pending_hit_cost = c.take_cost();
        c.epoch_close();
        c.take_cost();
        // Hit while CACHED: lookup + copy charged immediately.
        c.process_lookup(k, &LayoutSig::Contig(1024), &mut dst);
        let cached_hit_cost = c.take_cost();
        assert!(
            cached_hit_cost > pending_hit_cost,
            "cached {cached_hit_cost} <= pending {pending_hit_cost}"
        );
    }

    #[test]
    fn noncontiguous_layouts_hit_only_on_exact_match() {
        use clampi_datatype::Datatype;
        let mut c = cache(64, 4096);
        let dt = Datatype::vector(4, 1, 2, Datatype::bytes(8));
        let layout = dt.flatten();
        let sig = LayoutSig::from_layout(&layout);
        let data = vec![5u8; layout.total_size()];
        let mut dst = vec![0u8; data.len()];
        assert_eq!(c.process_lookup(key(2, 0), &sig, &mut dst), Lookup::Miss);
        c.finish_miss(key(2, 0), sig.clone(), &data, 0);
        c.epoch_close();

        // Exact same layout: hit.
        let mut dst2 = vec![0u8; data.len()];
        assert_eq!(c.process_lookup(key(2, 0), &sig, &mut dst2), Lookup::Hit);
        assert_eq!(dst2, data);

        // Different layout at the same key: incompatible partial.
        let other = Datatype::vector(2, 1, 4, Datatype::bytes(8)).flatten();
        let osig = LayoutSig::from_layout(&other);
        let mut dst3 = vec![0u8; other.total_size()];
        assert_eq!(
            c.process_lookup(key(2, 0), &osig, &mut dst3),
            Lookup::PartialHit { cached_len: 0 }
        );
    }

    #[test]
    fn ags_tracks_cumulative_mean() {
        let mut c = cache(64, 1 << 20);
        insert(&mut c, key(0, 0), &[0u8; 100]);
        insert(&mut c, key(0, 1000), &vec![0u8; 300]);
        assert!((c.avg_get_size() - 200.0).abs() < 1e-9);
        assert_eq!(c.seq(), 2);
    }

    #[test]
    fn temporal_scheme_evicts_lru_like() {
        // Two entries fill the storage; touch the first again, then force
        // an eviction: the untouched (older) one must go.
        let mut c = RmaCache::new(CacheParams {
            index_entries: 64,
            storage_bytes: 1024,
            victim_scheme: VictimScheme::Temporal,
            sample_size: 64, // scan everything: deterministic victim
            costs: CacheCostModel::free(),
            ..CacheParams::default()
        });
        let hot = key(0, 0);
        let cold = key(0, 5000);
        insert(&mut c, hot, &vec![1u8; 512]);
        insert(&mut c, cold, &vec![2u8; 512]);
        c.epoch_close();
        let mut dst = vec![0u8; 512];
        assert_eq!(
            c.process_lookup(hot, &LayoutSig::Contig(512), &mut dst),
            Lookup::Hit
        );

        insert(&mut c, key(0, 9000), &vec![3u8; 512]);
        c.epoch_close();
        // Hot survives, cold was evicted.
        assert_eq!(
            c.process_lookup(hot, &LayoutSig::Contig(512), &mut dst),
            Lookup::Hit
        );
        assert_eq!(
            c.process_lookup(cold, &LayoutSig::Contig(512), &mut dst),
            Lookup::Miss
        );
    }

    #[test]
    fn sharded_cache_splits_capacity_and_stays_consistent() {
        // 4 shards, capacity split evenly; every insert lands in the shard
        // its stripe selects and later hits from there.
        let mut c = RmaCache::new(CacheParams {
            index_entries: 256,
            storage_bytes: 64 << 10,
            costs: CacheCostModel::free(),
            shards: 4,
            ..CacheParams::default()
        });
        assert_eq!(c.shards.len(), 4);
        for sh in &c.shards {
            assert_eq!(sh.index.capacity(), 64);
            assert_eq!(sh.storage.capacity(), 16 << 10);
        }
        for i in 0..64u64 {
            let data = vec![i as u8; 128];
            assert_eq!(insert(&mut c, key(0, i * 1000), &data), AccessType::Direct);
        }
        c.epoch_close();
        assert_eq!(c.len(), 64);
        assert_eq!(c.cached_entries(), 64);
        assert!(
            c.shards.iter().all(|s| !s.index.is_empty()),
            "64 keys over 4 stripes should touch every shard"
        );
        for i in 0..64u64 {
            let mut dst = vec![0u8; 128];
            assert_eq!(
                c.process_lookup(key(0, i * 1000), &LayoutSig::Contig(128), &mut dst),
                Lookup::Hit
            );
            assert_eq!(dst, vec![i as u8; 128]);
        }
        assert_eq!(c.stats().hits, 64);
        // Cross-shard invalidation drops everything.
        c.invalidate();
        assert!(c.is_empty());
    }

    #[test]
    fn shard_zero_of_one_matches_unsharded_seeds() {
        // `shards: 1` must reproduce the historical seed streams exactly:
        // same index placement, same victim sampling, same fingerprints.
        let mut a = RmaCache::new(params(64, 4096));
        let mut b = RmaCache::new(CacheParams {
            shards: 1,
            ..params(64, 4096)
        });
        for i in 0..32u64 {
            let data = vec![i as u8; 200];
            assert_eq!(
                insert(&mut a, key(1, i * 64), &data),
                insert(&mut b, key(1, i * 64), &data)
            );
            a.epoch_close();
            b.epoch_close();
        }
        assert_eq!(a.content_fingerprint(), b.content_fingerprint());
        assert_eq!(a.stats().evictions, b.stats().evictions);
    }

    #[test]
    fn racy_probe_agrees_with_process_lookup_on_stable_state() {
        let mut c = cache(64, 8 << 10);
        for i in 0..16u64 {
            insert(&mut c, key(0, i * 100), &[i as u8; 64]);
        }
        c.epoch_close();
        let sh = &c.shards[0];
        for i in 0..16u64 {
            let mut dst = vec![0u8; 64];
            assert_eq!(sh.racy_probe(&key(0, i * 100), &mut dst), ProbeResult::Hit);
            assert_eq!(dst, vec![i as u8; 64]);
        }
        let mut dst = vec![0u8; 64];
        assert_eq!(sh.racy_probe(&key(9, 0), &mut dst), ProbeResult::Miss);
        // Oversized request: a clean miss, not a retry.
        let mut big = vec![0u8; 128];
        assert_eq!(sh.racy_probe(&key(0, 0), &mut big), ProbeResult::Miss);
    }

    #[test]
    fn racy_probe_reports_retry_on_pending_entries() {
        let mut c = cache(64, 4096);
        insert(&mut c, key(0, 0), &[1u8; 64]); // still PENDING
        let mut dst = vec![0u8; 64];
        assert_eq!(
            c.shards[0].racy_probe(&key(0, 0), &mut dst),
            ProbeResult::Retry
        );
        c.epoch_close();
        assert_eq!(
            c.shards[0].racy_probe(&key(0, 0), &mut dst),
            ProbeResult::Hit
        );
    }
}
