//! The caching engine `C_w = (I_w, S_w)`: the paper's core state machine.
//!
//! [`RmaCache`] ties together the Cuckoo index, the contiguous storage, the
//! victim-selection scores and the statistics. It is a *pure* state
//! machine: it never talks to the network. The window wrapper
//! ([`crate::CachedWindow`]) drives it in three steps per `get_c`:
//!
//! 1. [`RmaCache::process_lookup`] — classify the request against the
//!    index; on a (full) hit the data is copied into the destination
//!    buffer and the wrapper is done.
//! 2. On a miss / partial hit the wrapper issues the remote get, then calls
//!    [`RmaCache::finish_miss`] / [`RmaCache::finish_partial`] to try to
//!    cache the fetched data (direct / conflicting / capacity / failed).
//! 3. At every epoch closure the wrapper calls [`RmaCache::epoch_close`],
//!    which promotes `PENDING` entries to `CACHED` — the moment the paper
//!    performs the deferred cache-fill copies.
//!
//! **Timing.** The simulator moves bytes eagerly (data is always available
//! in wall-clock terms), but every management action accumulates model CPU
//! time which the wrapper drains via [`RmaCache::take_cost`] and charges to
//! the rank's virtual clock. Copies that the paper performs at epoch
//! closure (cache fills, pending-hit deliveries) are accumulated separately
//! and only charged when `epoch_close` runs — this is what gives *failing*
//! accesses their better comm/comp overlap in Fig. 8.

use std::collections::BTreeMap;
use std::sync::Arc;

use clampi_datatype::FlatLayout;
use clampi_prng::SmallRng;

use crate::costs::CacheCostModel;
use crate::eviction::{positional_score, score, temporal_score, VictimScheme};
use crate::index::{CuckooIndex, EntryId, GetKey, InsertOutcome};
use crate::stats::{AccessType, CacheStats};
use crate::storage::{DescId, Storage};

/// The shape of a get's payload, compared for full/partial-hit decisions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutSig {
    /// A single contiguous block of this many bytes at the displacement.
    Contig(usize),
    /// A non-contiguous flattened layout (offsets relative to the
    /// displacement).
    Blocks(Arc<FlatLayout>),
}

impl LayoutSig {
    /// Builds the signature for a flattened layout.
    pub fn from_layout(layout: &FlatLayout) -> Self {
        if layout.is_dense() {
            LayoutSig::Contig(layout.total_size())
        } else {
            LayoutSig::Blocks(Arc::new(layout.clone()))
        }
    }

    /// Payload size in bytes.
    pub fn size(&self) -> usize {
        match self {
            LayoutSig::Contig(s) => *s,
            LayoutSig::Blocks(l) => l.total_size(),
        }
    }
}

/// Cache entry states (Fig. 5). `MISSING` is represented by absence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryState {
    /// Requested in the current epoch; data arrives (conceptually) at the
    /// epoch closure.
    Pending,
    /// Data resident in `S_w` and servable.
    Cached,
}

#[derive(Debug)]
struct Entry {
    key: GetKey,
    sig: LayoutSig,
    size: usize,
    state: EntryState,
    desc: DescId,
    last: u64,
    /// Target-region write version observed when this entry was filled
    /// (0 when the caller does not track versions). The coherence layer
    /// compares it against put-notification records to drop stale data.
    version: u64,
}

const NO_DESC: DescId = DescId::MAX;

/// Result of the lookup phase of a `get_c`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Full hit: the destination buffer has been filled from the cache.
    Hit,
    /// The key matched but only the first `cached_len` bytes could be
    /// served (0 when the cached layout is incompatible); the wrapper must
    /// fetch the remainder and call [`RmaCache::finish_partial`].
    PartialHit {
        /// Bytes already copied into the head of the destination buffer.
        cached_len: usize,
    },
    /// No entry: the wrapper must fetch everything and call
    /// [`RmaCache::finish_miss`].
    Miss,
}

/// Tunable parameters of one caching layer.
#[derive(Debug, Clone)]
pub struct CacheParams {
    /// Number of index slots `|I_w|`.
    pub index_entries: usize,
    /// Storage bytes `|S_w|`.
    pub storage_bytes: usize,
    /// Victim-selection scheme (Sec. III-D1); `Full` in the paper's default.
    pub victim_scheme: VictimScheme,
    /// Victim sample size `M` (16 in the paper's experiments).
    pub sample_size: usize,
    /// Cuckoo insertion iteration threshold.
    pub max_insert_iters: usize,
    /// Maximum storage evictions attempted per miss. The paper's *weak
    /// caching* uses 1 — a constant — so that a `get_c` can never be
    /// slowed down proportionally to the number of cached entries
    /// (Sec. III-D2). Larger values trade bounded overhead for a higher
    /// insert success rate; the `abl_weak_caching` bench ablates this.
    pub max_evictions_per_miss: usize,
    /// CPU cost model for management activities.
    pub costs: CacheCostModel,
    /// RNG seed (hash functions, insertion walk, victim sampling).
    pub seed: u64,
    /// Upper bound, in bytes, on the merged extent of a coalesced
    /// nonblocking miss transfer ([`crate::CachedWindow::get_nb`]):
    /// adjacent/overlapping misses to the same target merge into one wire
    /// transfer only while the merged range stays within this bound.
    /// `0` disables coalescing entirely.
    pub max_coalesce_bytes: usize,
    /// How cached reads stay coherent with concurrent remote `put`s
    /// (see [`crate::coherence::CoherenceMode`]). `None` by default —
    /// bit-identical to the pre-coherence behaviour.
    pub coherence: crate::coherence::CoherenceMode,
}

impl Default for CacheParams {
    fn default() -> Self {
        CacheParams {
            index_entries: 4096,
            storage_bytes: 4 << 20,
            victim_scheme: VictimScheme::Full,
            sample_size: 16,
            max_insert_iters: 32,
            max_evictions_per_miss: 1,
            costs: CacheCostModel::default(),
            seed: 0xC1A3,
            max_coalesce_bytes: 16 << 10,
            coherence: crate::coherence::CoherenceMode::None,
        }
    }
}

/// The caching layer state machine for one window.
///
/// # Examples
///
/// Driving the engine directly (without a simulator window) — one miss,
/// one epoch close, one hit:
///
/// ```
/// use clampi::cache::{CacheParams, LayoutSig, Lookup, RmaCache};
/// use clampi::index::GetKey;
///
/// let mut cache = RmaCache::new(CacheParams::default());
/// let key = GetKey { target: 3, disp: 4096 };
/// let sig = LayoutSig::Contig(64);
/// let payload = [7u8; 64];
///
/// let mut dst = [0u8; 64];
/// assert_eq!(cache.process_lookup(key, &sig, &mut dst), Lookup::Miss);
/// cache.finish_miss(key, sig.clone(), &payload, 0); // caller fetched `payload`
/// cache.epoch_close();                           // PENDING -> CACHED
///
/// assert_eq!(cache.process_lookup(key, &sig, &mut dst), Lookup::Hit);
/// assert_eq!(dst, payload);
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct RmaCache {
    params: CacheParams,
    index: CuckooIndex,
    storage: Storage,
    entries: Vec<Option<Entry>>,
    spare: Vec<EntryId>,
    cached_count: usize,
    pending: Vec<EntryId>,
    stats: CacheStats,
    seq: u64,
    ags: f64,
    uncharged_ns: f64,
    deferred_ns: f64,
    rng: SmallRng,
    rebuilds: u64,
    resize_log: Vec<ResizeEvent>,
    /// Prefix length served from cache by the most recent PartialHit
    /// lookup (consumed by `finish_partial` for byte accounting).
    last_partial_prefix: usize,
    /// Recency index (`last` -> entry), maintained only for
    /// [`VictimScheme::ExactLru`]. `last` values are unique: each get
    /// touches at most one entry.
    recency: BTreeMap<u64, EntryId>,
    /// Resident entries per target rank (grown on demand), so coherence
    /// passes can skip targets with nothing cached in O(1).
    target_counts: Vec<u32>,
}

/// One adaptive resize, recorded for figure annotations and debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResizeEvent {
    /// Get sequence number at which the resize happened.
    pub at_seq: u64,
    /// New `|I_w|`.
    pub index_entries: usize,
    /// New `|S_w|`.
    pub storage_bytes: usize,
}

impl RmaCache {
    /// A fresh cache with the given parameters.
    pub fn new(params: CacheParams) -> Self {
        let index = CuckooIndex::new(
            params.index_entries.max(1),
            params.max_insert_iters,
            params.seed,
        );
        let storage = Storage::new(params.storage_bytes);
        let rng = SmallRng::seed_from_u64(params.seed ^ 0x5EED);
        RmaCache {
            index,
            storage,
            entries: Vec::new(),
            spare: Vec::new(),
            cached_count: 0,
            pending: Vec::new(),
            stats: CacheStats::default(),
            seq: 0,
            ags: 0.0,
            uncharged_ns: 0.0,
            deferred_ns: 0.0,
            rng,
            rebuilds: 0,
            resize_log: Vec::new(),
            last_partial_prefix: 0,
            recency: BTreeMap::new(),
            target_counts: Vec::new(),
            params,
        }
    }

    /// Current parameters.
    pub fn params(&self) -> &CacheParams {
        &self.params
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The get sequence counter (index into the paper's `C_w.G`).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The running average get size `C_w.ags`.
    pub fn avg_get_size(&self) -> f64 {
        self.ags
    }

    /// Occupied fraction of the storage buffer (Fig. 10's y-axis).
    pub fn occupancy(&self) -> f64 {
        self.storage.occupancy()
    }

    /// Free bytes in the storage buffer.
    pub fn free_bytes(&self) -> usize {
        self.storage.free_bytes()
    }

    /// Number of resident (pending + cached) entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Drains the accumulated management CPU time (nanoseconds) so the
    /// wrapper can charge it to the rank's virtual clock.
    pub fn take_cost(&mut self) -> f64 {
        std::mem::take(&mut self.uncharged_ns)
    }

    fn charge(&mut self, ns: f64) {
        self.uncharged_ns += ns;
    }

    fn defer(&mut self, ns: f64) {
        self.deferred_ns += ns;
    }

    fn entry(&self, id: EntryId) -> &Entry {
        // xlint: allow(no-unwrap) invariant: ids are only handed out for live slots
        self.entries[id as usize].as_ref().expect("stale entry id")
    }

    fn entry_mut(&mut self, id: EntryId) -> &mut Entry {
        // xlint: allow(no-unwrap) invariant: ids are only handed out for live slots
        self.entries[id as usize].as_mut().expect("stale entry id")
    }

    fn alloc_entry(&mut self, e: Entry) -> EntryId {
        let t = e.key.target as usize;
        if t >= self.target_counts.len() {
            self.target_counts.resize(t + 1, 0);
        }
        self.target_counts[t] += 1;
        if let Some(id) = self.spare.pop() {
            self.entries[id as usize] = Some(e);
            id
        } else {
            self.entries.push(Some(e));
            (self.entries.len() - 1) as EntryId
        }
    }

    fn lru_enabled(&self) -> bool {
        self.params.victim_scheme == VictimScheme::ExactLru
    }

    /// Moves `id` from recency position `old` to `new` (ExactLru only).
    fn touch_recency(&mut self, id: EntryId, old: u64, new: u64) {
        if self.lru_enabled() && old != new {
            self.recency.remove(&old);
            let prev = self.recency.insert(new, id);
            debug_assert!(prev.is_none(), "recency key collision at {new}");
            // The recency update is real work on every hit: the price of
            // exact LRU the paper's sampled scheme avoids.
            self.charge(self.params.costs.insert_step_ns);
        }
    }

    fn drop_entry(&mut self, id: EntryId) {
        if self.lru_enabled() {
            let last = self.entry(id).last;
            self.recency.remove(&last);
        }
        // xlint: allow(no-unwrap) invariant: callers drop an id at most once
        let e = self.entries[id as usize].take().expect("double entry drop");
        self.target_counts[e.key.target as usize] -= 1;
        match e.state {
            EntryState::Cached => self.cached_count -= 1,
            // A PENDING entry can be dropped when a Cuckoo displacement
            // chain leaves it homeless; forget its scheduled promotion.
            EntryState::Pending => self.pending.retain(|&p| p != id),
        }
        self.spare.push(id);
    }

    /// Whether any resident (pending or cached) entry is keyed to
    /// `target`. O(1): lets a coherence pass skip targets with nothing
    /// cached without scanning the index.
    pub fn has_entries_for(&self, target: u32) -> bool {
        self.target_counts
            .get(target as usize)
            .is_some_and(|&c| c > 0)
    }

    /// Phase 1 of a `get_c`: classify against the index, serving full hits
    /// (and the head of contiguous partial hits) into `dst`.
    ///
    /// `dst.len()` must equal `sig.size()`.
    pub fn process_lookup(&mut self, key: GetKey, sig: &LayoutSig, dst: &mut [u8]) -> Lookup {
        let size = sig.size();
        debug_assert_eq!(dst.len(), size);
        self.seq += 1;
        // Cumulative mean of processed get sizes (the paper's ags).
        self.ags += (size as f64 - self.ags) / self.seq as f64;
        self.charge(self.params.costs.lookup_ns);

        let Some(id) = self.index.lookup(&key) else {
            return Lookup::Miss;
        };
        debug_assert_eq!(self.entry(id).key, key, "index returned a foreign entry");
        let seq = self.seq;
        let (full, cached_len) = {
            let e = self.entry(id);
            match (&e.sig, sig) {
                (LayoutSig::Contig(have), LayoutSig::Contig(want)) => {
                    if want <= have {
                        (true, *want)
                    } else if e.state == EntryState::Cached {
                        (false, *have)
                    } else {
                        // Partial hit on a PENDING entry: nothing servable
                        // yet (its fill is deferred to the epoch close).
                        (false, 0)
                    }
                }
                (LayoutSig::Blocks(have), LayoutSig::Blocks(want)) if have == want => (true, size),
                _ => (false, 0),
            }
        };

        if full {
            let state = self.entry(id).state;
            let desc = self.entry(id).desc;
            let old_last = self.entry(id).last;
            dst.copy_from_slice(self.storage.read(desc, size));
            self.entry_mut(id).last = seq;
            self.touch_recency(id, old_last, seq);
            let copy = self.params.costs.memcpy_cost(size);
            match state {
                // CACHED: the copy happens right now.
                EntryState::Cached => self.charge(copy),
                // PENDING: the paper copies at the epoch closure.
                EntryState::Pending => self.defer(copy),
            }
            self.stats.record(AccessType::Hit);
            self.stats.bytes_from_cache += size as u64;
            Lookup::Hit
        } else {
            if cached_len > 0 {
                let desc = self.entry(id).desc;
                dst[..cached_len].copy_from_slice(self.storage.read(desc, cached_len));
                let copy = self.params.costs.memcpy_cost(cached_len);
                self.charge(copy);
                self.stats.bytes_from_cache += cached_len as u64;
            }
            let old_last = self.entry(id).last;
            self.entry_mut(id).last = seq;
            self.touch_recency(id, old_last, seq);
            self.stats.partial_hits += 1;
            self.last_partial_prefix = cached_len;
            Lookup::PartialHit { cached_len }
        }
    }

    /// Phase 2 after a [`Lookup::Miss`]: `data` is the fetched payload;
    /// attempt to cache it. Returns the access classification.
    ///
    /// `version` is the target-region write version observed *before* the
    /// payload bytes were read (pass 0 when versions are not tracked); the
    /// coherence layer uses it to decide staleness later.
    pub fn finish_miss(
        &mut self,
        key: GetKey,
        sig: LayoutSig,
        data: &[u8],
        version: u64,
    ) -> AccessType {
        let size = sig.size();
        debug_assert_eq!(data.len(), size);
        self.stats.bytes_from_network += size as u64;
        let id = self.alloc_entry(Entry {
            key,
            sig,
            size,
            state: EntryState::Pending,
            desc: NO_DESC,
            last: self.seq,
            version,
        });

        let (inserted, conflicted) = self.insert_with_path_eviction(key, id);
        if !inserted {
            self.drop_entry(id);
            self.stats.record(AccessType::Failed);
            return AccessType::Failed;
        }

        let (desc, evicted_for_space) = self.alloc_with_eviction(size, id, None);
        let class = match desc {
            Some(d) => {
                self.storage.write(d, data);
                self.entry_mut(id).desc = d;
                self.pending.push(id);
                if self.lru_enabled() {
                    let last = self.entry(id).last;
                    let prev = self.recency.insert(last, id);
                    debug_assert!(prev.is_none(), "recency key collision at {last}");
                }
                let copy = self.params.costs.memcpy_cost(size);
                self.defer(copy);
                if conflicted {
                    AccessType::Conflicting
                } else if evicted_for_space {
                    AccessType::Capacity
                } else {
                    AccessType::Direct
                }
            }
            None => {
                // Weak caching: give up, the get itself already succeeded.
                self.index.remove(&key);
                self.drop_entry(id);
                AccessType::Failed
            }
        };
        self.stats.record(class);
        class
    }

    /// Phase 2 after a [`Lookup::PartialHit`]: `data` is the *full* payload
    /// (head served from cache, tail fetched by the wrapper). Attempts to
    /// extend (re-allocate) the existing entry; on failure the old, shorter
    /// entry stays valid (Sec. III-B: "extended only if `S_w` contains
    /// enough space").
    ///
    /// `version` is the write version observed before the tail fetch; the
    /// extended entry is stamped with the *older* of its existing version
    /// and `version` (the head bytes may predate the tail bytes, so the
    /// conservative choice is the minimum).
    pub fn finish_partial(
        &mut self,
        key: GetKey,
        sig: LayoutSig,
        data: &[u8],
        version: u64,
    ) -> AccessType {
        let size = sig.size();
        debug_assert_eq!(data.len(), size);
        let Some(id) = self.index.lookup(&key) else {
            // The entry vanished (should not happen between phases).
            return self.finish_miss(key, sig, data, version);
        };
        // The wrapper fetched everything beyond the served prefix (which is
        // zero for incompatible layouts).
        self.stats.bytes_from_network +=
            (size as u64).saturating_sub(self.last_partial_prefix as u64);
        self.last_partial_prefix = 0;

        if self.entry(id).state == EntryState::Pending {
            // Cannot touch a pending entry's storage; leave it as-is.
            self.stats.record(AccessType::Failed);
            return AccessType::Failed;
        }

        // Allocate the larger region first so failure leaves the old entry
        // intact; exclude the entry itself from victim selection.
        let (desc, evicted_for_space) = self.alloc_with_eviction(size, id, Some(id));
        let class = match desc {
            Some(d) => {
                let old = self.entry(id).desc;
                self.storage.free(old);
                self.charge(self.params.costs.alloc_ns);
                self.storage.write(d, data);
                {
                    let e = self.entry_mut(id);
                    e.desc = d;
                    e.size = size;
                    e.sig = sig;
                    e.state = EntryState::Pending;
                    e.version = e.version.min(version);
                }
                self.cached_count -= 1;
                self.pending.push(id);
                let copy = self.params.costs.memcpy_cost(size);
                self.defer(copy);
                if evicted_for_space {
                    AccessType::Capacity
                } else {
                    AccessType::Direct
                }
            }
            None => AccessType::Failed,
        };
        self.stats.record(class);
        class
    }

    /// Cuckoo insertion with the paper's conflicting-access handling: a
    /// cycle evicts the lowest-score CACHED entry on the insertion path and
    /// retries. Returns `(inserted, conflicted)`.
    fn insert_with_path_eviction(&mut self, key: GetKey, id: EntryId) -> (bool, bool) {
        const MAX_RETRIES: usize = 4;
        let mut conflicted = false;
        let mut cur = (key, id);
        for attempt in 0..MAX_RETRIES {
            match self.index.insert(cur.0, cur.1) {
                InsertOutcome::Placed { steps } => {
                    self.charge(self.params.costs.insert_step_ns * (steps + 1) as f64);
                    return (true, conflicted);
                }
                InsertOutcome::Cycle { homeless, path } => {
                    conflicted = true;
                    self.charge(self.params.costs.insert_step_ns * path.len() as f64);
                    if attempt + 1 == MAX_RETRIES {
                        return self.resolve_homeless(homeless, id, conflicted);
                    }
                    // Victim: lowest score among CACHED entries on the path.
                    let mut best: Option<(usize, EntryId, f64)> = None;
                    for &slot in &path {
                        if let Some((_k, eid)) = self.index.slot(slot) {
                            if eid == id {
                                continue;
                            }
                            let e = self.entry(eid);
                            if e.state != EntryState::Cached {
                                continue;
                            }
                            let s = self.entry_score(eid);
                            if best.is_none_or(|(_, _, bs)| s < bs) {
                                best = Some((slot, eid, s));
                            }
                        }
                    }
                    match best {
                        Some((slot, victim, _)) => {
                            self.evict_resident(slot, victim);
                            cur = homeless;
                        }
                        None => {
                            return self.resolve_homeless(homeless, id, conflicted);
                        }
                    }
                }
            }
        }
        unreachable!("loop returns on the last attempt")
    }

    fn resolve_homeless(
        &mut self,
        homeless: (GetKey, EntryId),
        new_id: EntryId,
        conflicted: bool,
    ) -> (bool, bool) {
        if homeless.1 == new_id {
            // The new entry itself could not be placed; nothing to undo.
            (false, conflicted)
        } else {
            // The new key is placed; the displaced resident is dropped
            // (it lost its slot and path eviction found no better victim).
            self.free_entry_storage(homeless.1);
            self.drop_entry(homeless.1);
            (true, conflicted)
        }
    }

    fn free_entry_storage(&mut self, id: EntryId) {
        let desc = self.entry(id).desc;
        if desc != NO_DESC {
            self.storage.free(desc);
            self.charge(self.params.costs.alloc_ns);
        }
    }

    fn entry_score(&self, id: EntryId) -> f64 {
        let e = self.entry(id);
        let r_t = temporal_score(e.last, self.seq);
        let r_p = positional_score(self.ags, self.storage.adjacent_free(e.desc));
        score(self.params.victim_scheme, r_p, r_t)
    }

    /// Removes a resident entry found at `slot` and releases its storage.
    fn evict_resident(&mut self, slot: usize, id: EntryId) {
        let removed = self.index.remove_slot(slot);
        debug_assert!(matches!(removed, Some((_, e)) if e == id));
        self.free_entry_storage(id);
        self.drop_entry(id);
    }

    /// Best-fit allocation with up to `max_evictions_per_miss`
    /// capacity-eviction attempts on failure (1 = the paper's weak
    /// caching).
    fn alloc_with_eviction(
        &mut self,
        size: usize,
        id: EntryId,
        exclude: Option<EntryId>,
    ) -> (Option<DescId>, bool) {
        self.charge(self.params.costs.alloc_ns);
        if let Some(d) = self.storage.alloc(size, id) {
            return (Some(d), false);
        }
        let budget = self.params.max_evictions_per_miss.max(1);
        for _ in 0..budget {
            if !self.run_capacity_eviction(exclude) {
                return (None, true);
            }
            self.charge(self.params.costs.alloc_ns);
            if let Some(d) = self.storage.alloc(size, id) {
                return (Some(d), true);
            }
        }
        (None, true)
    }

    /// The sampled victim selection of Sec. III-D: scan at least `M`
    /// consecutive index slots from a random start (continuing until a
    /// candidate appears), evict the lowest-score CACHED entry.
    fn run_capacity_eviction(&mut self, exclude: Option<EntryId>) -> bool {
        if self.lru_enabled() {
            return self.run_exact_lru_eviction(exclude);
        }
        let cap = self.index.capacity();
        let start = self.rng.gen_range(0..cap);
        let m = self.params.sample_size.max(1);
        let mut visited = 0usize;
        let mut nonempty = 0u64;
        let mut best: Option<(usize, EntryId, f64)> = None;
        while visited < cap {
            let pos = (start + visited) % cap;
            visited += 1;
            if let Some((_k, eid)) = self.index.slot(pos) {
                nonempty += 1;
                let evictable = Some(eid) != exclude && self.entry(eid).state == EntryState::Cached;
                if evictable {
                    let s = self.entry_score(eid);
                    if best.is_none_or(|(_, _, bs)| s < bs) {
                        best = Some((pos, eid, s));
                    }
                }
            }
            if visited >= m && best.is_some() {
                break;
            }
        }
        self.stats.evictions += 1;
        self.stats.visited_slots += visited as u64;
        self.stats.visited_nonempty += nonempty;
        self.charge(self.params.costs.evict_visit_ns * visited as f64);
        match best {
            Some((slot, victim, _)) => {
                self.evict_resident(slot, victim);
                true
            }
            None => false,
        }
    }

    /// Exact-LRU capacity eviction: walk the recency index oldest-first
    /// and evict the first CACHED (non-excluded) entry.
    fn run_exact_lru_eviction(&mut self, exclude: Option<EntryId>) -> bool {
        let mut victim = None;
        let mut visited = 0u64;
        for (_, &id) in self.recency.iter() {
            visited += 1;
            if Some(id) != exclude && self.entry(id).state == EntryState::Cached {
                victim = Some(id);
                break;
            }
        }
        self.stats.evictions += 1;
        self.stats.visited_slots += visited;
        self.stats.visited_nonempty += visited;
        self.charge(self.params.costs.evict_visit_ns * visited as f64);
        match victim {
            Some(id) => {
                let key = self.entry(id).key;
                let removed = self.index.remove(&key);
                debug_assert_eq!(removed, Some(id));
                self.free_entry_storage(id);
                self.drop_entry(id);
                true
            }
            None => false,
        }
    }

    /// Epoch-closure hook: promotes PENDING entries to CACHED and charges
    /// the deferred copy costs (the paper's "data has to be explicitly
    /// copied into the cache memory at the epoch closure time").
    pub fn epoch_close(&mut self) {
        self.charge(self.params.costs.epoch_hook_ns);
        let deferred = std::mem::take(&mut self.deferred_ns);
        self.charge(deferred);
        let pending = std::mem::take(&mut self.pending);
        for id in pending {
            // An entry may have been evicted while pending? No: pending
            // entries are excluded from eviction, so it must still exist.
            let e = self.entry_mut(id);
            debug_assert_eq!(e.state, EntryState::Pending);
            e.state = EntryState::Cached;
            self.cached_count += 1;
        }
    }

    /// Drops every resident entry whose cached bytes overlap
    /// `[lo, hi)` in `target`'s window; returns how many were dropped.
    ///
    /// This is not part of the paper's design — MPI's epoch rules make
    /// reads of concurrently written data illegal anyway — but it enables
    /// the *write-through invalidation* extension of
    /// [`crate::ClampiConfig::invalidate_on_put`], which keeps a
    /// long-lived always-cache window coherent with the issuing rank's own
    /// puts. The scan is linear in `|I_w|` (puts are assumed rare on
    /// cached windows).
    pub fn invalidate_range(&mut self, target: u32, lo: u64, hi: u64) -> usize {
        let cap = self.index.capacity();
        self.charge(self.params.costs.evict_visit_ns * cap as f64);
        let mut victims = Vec::new();
        for slot in 0..cap {
            if let Some((key, id)) = self.index.slot(slot) {
                if key.target != target {
                    continue;
                }
                let e = self.entry(id);
                let e_lo = key.disp;
                let e_hi = key.disp + e.size as u64;
                if e_lo < hi && lo < e_hi {
                    victims.push((slot, id));
                }
            }
        }
        let dropped = victims.len();
        for (slot, id) in victims {
            self.evict_resident(slot, id);
        }
        dropped
    }

    /// Drops every resident entry keyed to `target` whose stored version
    /// differs from `version` (the target's current write version, fetched
    /// by an `EpochValidate` coherence pass); returns how many were
    /// dropped. Entries already stamped with the current version are
    /// provably fresh and survive.
    pub fn invalidate_target_stale(&mut self, target: u32, version: u64) -> usize {
        if !self.has_entries_for(target) {
            return 0;
        }
        let cap = self.index.capacity();
        self.charge(self.params.costs.evict_visit_ns * cap as f64);
        let mut victims = Vec::new();
        for slot in 0..cap {
            if let Some((key, id)) = self.index.slot(slot) {
                if key.target == target && self.entry(id).version != version {
                    victims.push((slot, id));
                }
            }
        }
        let dropped = victims.len();
        for (slot, id) in victims {
            self.evict_resident(slot, id);
        }
        dropped
    }

    /// Drops every resident entry keyed to `target` that overlaps one of
    /// the put `ranges` (`(lo, hi, version)`, half-open bytes) *and* was
    /// filled before that put (`entry.version < version`); returns how
    /// many were dropped. This is the surgical `EagerInvalidate` path: a
    /// single index scan checks each resident entry against every drained
    /// notification record.
    pub fn invalidate_overlapping_stale(
        &mut self,
        target: u32,
        ranges: &[(u64, u64, u64)],
    ) -> usize {
        if ranges.is_empty() || !self.has_entries_for(target) {
            return 0;
        }
        let cap = self.index.capacity();
        self.charge(self.params.costs.evict_visit_ns * cap as f64);
        let mut victims = Vec::new();
        for slot in 0..cap {
            if let Some((key, id)) = self.index.slot(slot) {
                if key.target != target {
                    continue;
                }
                let e = self.entry(id);
                let e_lo = key.disp;
                let e_hi = key.disp + e.size as u64;
                let stale = ranges
                    .iter()
                    .any(|&(lo, hi, v)| e_lo < hi && lo < e_hi && e.version < v);
                if stale {
                    victims.push((slot, id));
                }
            }
        }
        let dropped = victims.len();
        for (slot, id) in victims {
            self.evict_resident(slot, id);
        }
        dropped
    }

    /// Drops every cached entry (transparent-mode epoch invalidation,
    /// `CLAMPI_Invalidate`, or an adaptive adjustment).
    pub fn invalidate(&mut self) {
        self.index.clear();
        self.storage.clear();
        self.entries.clear();
        self.spare.clear();
        self.pending.clear();
        self.cached_count = 0;
        self.deferred_ns = 0.0;
        self.target_counts.clear();
        self.stats.invalidations += 1;
    }

    /// The adaptive resize history.
    pub fn resize_log(&self) -> &[ResizeEvent] {
        &self.resize_log
    }

    /// Replaces `|I_w|` / `|S_w|` and invalidates (adaptive adjustment).
    pub fn resize(&mut self, index_entries: usize, storage_bytes: usize) {
        self.rebuilds += 1;
        self.resize_log.push(ResizeEvent {
            at_seq: self.seq,
            index_entries,
            storage_bytes,
        });
        self.params.index_entries = index_entries.max(1);
        self.params.storage_bytes = storage_bytes;
        self.index = CuckooIndex::new(
            self.params.index_entries,
            self.params.max_insert_iters,
            self.params.seed.wrapping_add(self.rebuilds),
        );
        self.storage = Storage::new(storage_bytes);
        self.entries.clear();
        self.spare.clear();
        self.pending.clear();
        self.recency.clear();
        self.cached_count = 0;
        self.deferred_ns = 0.0;
        self.target_counts.clear();
        self.stats.invalidations += 1;
        self.stats.adjustments += 1;
    }

    /// Number of entries in the CACHED state.
    pub fn cached_entries(&self) -> usize {
        self.cached_count
    }

    /// An order-independent-of-nothing, content-sensitive fingerprint of
    /// the resident cache state: every occupied index slot contributes its
    /// position, key, entry state, size, and stored payload bytes to an
    /// FNV-1a hash. Two caches that went through the same sequence of
    /// state transitions fingerprint identically; any divergence in
    /// placement, classification, or bytes shows up. Used by the
    /// nonblocking-vs-blocking equivalence property test.
    pub fn content_fingerprint(&self) -> u64 {
        struct Fnv(u64);
        impl Fnv {
            fn byte(&mut self, b: u8) {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x100000001b3);
            }
            fn word(&mut self, w: u64) {
                for b in w.to_le_bytes() {
                    self.byte(b);
                }
            }
        }
        let mut h = Fnv(0xcbf29ce484222325);
        for slot in 0..self.index.capacity() {
            let Some((key, id)) = self.index.slot(slot) else {
                continue;
            };
            let e = self.entry(id);
            h.word(slot as u64);
            h.word(key.target as u64);
            h.word(key.disp);
            h.word(match e.state {
                EntryState::Pending => 1,
                EntryState::Cached => 2,
            });
            h.word(e.size as u64);
            if e.desc != NO_DESC {
                for &b in self.storage.read(e.desc, e.size) {
                    h.byte(b);
                }
            }
        }
        h.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(t: u32, d: u64) -> GetKey {
        GetKey { target: t, disp: d }
    }

    fn params(index: usize, storage: usize) -> CacheParams {
        CacheParams {
            index_entries: index,
            storage_bytes: storage,
            costs: CacheCostModel::free(),
            ..CacheParams::default()
        }
    }

    fn cache(index: usize, storage: usize) -> RmaCache {
        RmaCache::new(params(index, storage))
    }

    /// Drives a full miss-then-cache cycle with payload `data`.
    fn insert(c: &mut RmaCache, k: GetKey, data: &[u8]) -> AccessType {
        let sig = LayoutSig::Contig(data.len());
        let mut dst = vec![0u8; data.len()];
        match c.process_lookup(k, &sig, &mut dst) {
            Lookup::Miss => c.finish_miss(k, sig, data, 0),
            other => panic!("expected miss, got {other:?}"),
        }
    }

    #[test]
    fn miss_then_pending_hit_then_cached_hit() {
        let mut c = cache(64, 4096);
        let k = key(1, 0);
        let data = vec![7u8; 100];
        assert_eq!(insert(&mut c, k, &data), AccessType::Direct);

        // Same epoch: hit on the PENDING entry.
        let mut dst = vec![0u8; 100];
        assert_eq!(
            c.process_lookup(k, &LayoutSig::Contig(100), &mut dst),
            Lookup::Hit
        );
        assert_eq!(dst, data);
        assert_eq!(c.cached_entries(), 0, "still pending");

        c.epoch_close();
        assert_eq!(c.cached_entries(), 1);

        let mut dst2 = vec![0u8; 100];
        assert_eq!(
            c.process_lookup(k, &LayoutSig::Contig(100), &mut dst2),
            Lookup::Hit
        );
        assert_eq!(dst2, data);
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().direct, 1);
    }

    #[test]
    fn smaller_request_is_full_hit_on_larger_entry() {
        let mut c = cache(64, 4096);
        let k = key(0, 64);
        let data: Vec<u8> = (0..200u8).collect();
        insert(&mut c, k, &data);
        c.epoch_close();
        let mut dst = vec![0u8; 50];
        assert_eq!(
            c.process_lookup(k, &LayoutSig::Contig(50), &mut dst),
            Lookup::Hit
        );
        assert_eq!(&dst[..], &data[..50]);
    }

    #[test]
    fn larger_request_is_partial_hit_and_extends() {
        let mut c = cache(64, 8192);
        let k = key(0, 0);
        let data: Vec<u8> = (0..=99u8).collect();
        insert(&mut c, k, &data);
        c.epoch_close();

        let big: Vec<u8> = (0..=255u8).collect();
        let mut dst = vec![0u8; 256];
        match c.process_lookup(k, &LayoutSig::Contig(256), &mut dst) {
            Lookup::PartialHit { cached_len } => {
                assert_eq!(cached_len, 100);
                assert_eq!(&dst[..100], &big[..100], "prefix served from cache");
            }
            other => panic!("expected partial hit, got {other:?}"),
        }
        dst[100..].copy_from_slice(&big[100..]); // wrapper fetches the tail
        assert_eq!(
            c.finish_partial(k, LayoutSig::Contig(256), &dst, 0),
            AccessType::Direct
        );
        c.epoch_close();

        // Now the whole 256 bytes hit.
        let mut dst2 = vec![0u8; 256];
        assert_eq!(
            c.process_lookup(k, &LayoutSig::Contig(256), &mut dst2),
            Lookup::Hit
        );
        assert_eq!(dst2, big);
        assert_eq!(c.stats().partial_hits, 1);
    }

    #[test]
    fn capacity_eviction_makes_room() {
        // Storage fits exactly two 512-byte entries.
        let mut c = cache(64, 1024);
        insert(&mut c, key(0, 0), &vec![1u8; 512]);
        insert(&mut c, key(0, 1000), &vec![2u8; 512]);
        c.epoch_close();
        assert_eq!(c.free_bytes(), 0);

        let t = insert(&mut c, key(0, 2000), &vec![3u8; 512]);
        assert_eq!(t, AccessType::Capacity);
        assert_eq!(c.stats().evictions, 1);
        c.epoch_close();
        assert_eq!(c.cached_entries(), 2);
    }

    #[test]
    fn failing_access_leaves_cache_consistent() {
        // Entry bigger than the whole storage can never be cached.
        let mut c = cache(64, 256);
        let t = insert(&mut c, key(0, 0), &vec![1u8; 10_000]);
        assert_eq!(t, AccessType::Failed);
        assert!(c.is_empty());
        // And a later normal insert still works.
        assert_eq!(insert(&mut c, key(0, 64), &[2u8; 64]), AccessType::Direct);
    }

    #[test]
    fn pending_entries_are_not_evicted() {
        let mut c = cache(64, 1024);
        // Fill storage with two pending entries (no epoch close yet).
        insert(&mut c, key(0, 0), &vec![1u8; 512]);
        insert(&mut c, key(0, 1000), &vec![2u8; 512]);
        // A third insert in the same epoch: eviction cannot pick pending
        // entries, so the access fails.
        let t = insert(&mut c, key(0, 2000), &[3u8; 128]);
        assert_eq!(t, AccessType::Failed);
        c.epoch_close();
        assert_eq!(c.cached_entries(), 2, "pending entries survived");
    }

    #[test]
    fn conflicting_access_on_tiny_index() {
        // A 4-slot index overflows quickly; the engine must classify the
        // overflow as Conflicting (or fail gracefully) and stay consistent.
        let mut c = RmaCache::new(CacheParams {
            index_entries: 4,
            storage_bytes: 1 << 20,
            max_insert_iters: 8,
            costs: CacheCostModel::free(),
            ..CacheParams::default()
        });
        let mut classes = Vec::new();
        for i in 0..32u64 {
            classes.push(insert(&mut c, key(0, i * 64), &[i as u8; 64]));
            c.epoch_close();
        }
        assert!(
            classes.contains(&AccessType::Conflicting),
            "expected at least one conflicting access, got {classes:?}"
        );
        assert!(c.len() <= 4);
        // Every resident entry still serves correct data.
        let resident: Vec<(GetKey, EntryId)> = (0..4).filter_map(|s| c.index.slot(s)).collect();
        for (k, _) in resident {
            let mut dst = vec![0u8; 64];
            assert_eq!(
                c.process_lookup(k, &LayoutSig::Contig(64), &mut dst),
                Lookup::Hit
            );
            assert_eq!(dst, vec![(k.disp / 64) as u8; 64]);
        }
    }

    #[test]
    fn invalidate_clears_everything() {
        let mut c = cache(64, 4096);
        insert(&mut c, key(0, 0), &[1, 2, 3]);
        c.epoch_close();
        c.invalidate();
        assert!(c.is_empty());
        assert_eq!(c.cached_entries(), 0);
        assert_eq!(c.free_bytes(), 4096);
        assert_eq!(c.stats().invalidations, 1);
        let mut dst = vec![0u8; 3];
        assert_eq!(
            c.process_lookup(key(0, 0), &LayoutSig::Contig(3), &mut dst),
            Lookup::Miss
        );
    }

    #[test]
    fn resize_counts_as_adjustment() {
        let mut c = cache(64, 4096);
        insert(&mut c, key(0, 0), &[1, 2, 3]);
        c.epoch_close();
        c.resize(128, 8192);
        assert!(c.is_empty());
        assert_eq!(c.params().index_entries, 128);
        assert_eq!(c.params().storage_bytes, 8192);
        assert_eq!(c.stats().adjustments, 1);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn costs_accumulate_and_drain() {
        let mut c = RmaCache::new(CacheParams {
            index_entries: 64,
            storage_bytes: 4096,
            ..CacheParams::default()
        });
        insert(&mut c, key(0, 0), &vec![0u8; 256]);
        let cost = c.take_cost();
        assert!(cost > 0.0, "lookup + insert + alloc must cost CPU time");
        assert_eq!(c.take_cost(), 0.0, "drained");
        // The cache-fill copy is deferred to the epoch close.
        c.epoch_close();
        let close_cost = c.take_cost();
        assert!(
            close_cost >= c.params().costs.memcpy_cost(256),
            "epoch close must charge the deferred fill copy"
        );
    }

    #[test]
    fn hit_on_cached_charges_now_but_pending_defers() {
        let mut c = RmaCache::new(CacheParams {
            index_entries: 64,
            storage_bytes: 4096,
            ..CacheParams::default()
        });
        let k = key(0, 0);
        insert(&mut c, k, &vec![0u8; 1024]);
        c.take_cost();
        // Hit while PENDING: only the lookup is charged immediately.
        let mut dst = vec![0u8; 1024];
        c.process_lookup(k, &LayoutSig::Contig(1024), &mut dst);
        let pending_hit_cost = c.take_cost();
        c.epoch_close();
        c.take_cost();
        // Hit while CACHED: lookup + copy charged immediately.
        c.process_lookup(k, &LayoutSig::Contig(1024), &mut dst);
        let cached_hit_cost = c.take_cost();
        assert!(
            cached_hit_cost > pending_hit_cost,
            "cached {cached_hit_cost} <= pending {pending_hit_cost}"
        );
    }

    #[test]
    fn noncontiguous_layouts_hit_only_on_exact_match() {
        use clampi_datatype::Datatype;
        let mut c = cache(64, 4096);
        let dt = Datatype::vector(4, 1, 2, Datatype::bytes(8));
        let layout = dt.flatten();
        let sig = LayoutSig::from_layout(&layout);
        let data = vec![5u8; layout.total_size()];
        let mut dst = vec![0u8; data.len()];
        assert_eq!(c.process_lookup(key(2, 0), &sig, &mut dst), Lookup::Miss);
        c.finish_miss(key(2, 0), sig.clone(), &data, 0);
        c.epoch_close();

        // Exact same layout: hit.
        let mut dst2 = vec![0u8; data.len()];
        assert_eq!(c.process_lookup(key(2, 0), &sig, &mut dst2), Lookup::Hit);
        assert_eq!(dst2, data);

        // Different layout at the same key: incompatible partial.
        let other = Datatype::vector(2, 1, 4, Datatype::bytes(8)).flatten();
        let osig = LayoutSig::from_layout(&other);
        let mut dst3 = vec![0u8; other.total_size()];
        assert_eq!(
            c.process_lookup(key(2, 0), &osig, &mut dst3),
            Lookup::PartialHit { cached_len: 0 }
        );
    }

    #[test]
    fn ags_tracks_cumulative_mean() {
        let mut c = cache(64, 1 << 20);
        insert(&mut c, key(0, 0), &[0u8; 100]);
        insert(&mut c, key(0, 1000), &vec![0u8; 300]);
        assert!((c.avg_get_size() - 200.0).abs() < 1e-9);
        assert_eq!(c.seq(), 2);
    }

    #[test]
    fn temporal_scheme_evicts_lru_like() {
        // Two entries fill the storage; touch the first again, then force
        // an eviction: the untouched (older) one must go.
        let mut c = RmaCache::new(CacheParams {
            index_entries: 64,
            storage_bytes: 1024,
            victim_scheme: VictimScheme::Temporal,
            sample_size: 64, // scan everything: deterministic victim
            costs: CacheCostModel::free(),
            ..CacheParams::default()
        });
        let hot = key(0, 0);
        let cold = key(0, 5000);
        insert(&mut c, hot, &vec![1u8; 512]);
        insert(&mut c, cold, &vec![2u8; 512]);
        c.epoch_close();
        let mut dst = vec![0u8; 512];
        assert_eq!(
            c.process_lookup(hot, &LayoutSig::Contig(512), &mut dst),
            Lookup::Hit
        );

        insert(&mut c, key(0, 9000), &vec![3u8; 512]);
        c.epoch_close();
        // Hot survives, cold was evicted.
        assert_eq!(
            c.process_lookup(hot, &LayoutSig::Contig(512), &mut dst),
            Lookup::Hit
        );
        assert_eq!(
            c.process_lookup(cold, &LayoutSig::Contig(512), &mut dst),
            Lookup::Miss
        );
    }
}
