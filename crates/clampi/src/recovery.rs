//! Fault recovery for cached windows: retry, backoff, and degradation.
//!
//! The RMA simulator's fault layer (`clampi_rma::fault`) surfaces injected
//! failures as typed [`RmaError`]s. This module decides what the caching
//! layer does about them, in two tiers:
//!
//! 1. **Transient faults** are retried up to [`RetryPolicy::max_retries`]
//!    times with exponential backoff. Backoff is *virtual* time: the rank
//!    sits idle on its [`clampi_rma::Clock`] (charged as blocked time) so
//!    fault handling shows up in the simulated timelines exactly like a
//!    real retry loop would. A per-operation budget
//!    ([`RetryPolicy::op_timeout_ns`]) bounds the total virtual time one
//!    get may burn before it is abandoned.
//! 2. **Persistent target failures** ([`RmaError::TargetFailed`]) degrade
//!    gracefully: the caching layer drops every cached entry for that
//!    target (its data can no longer be validated) and serves all later
//!    accesses to it locally as `Failed` — zero-filled payload, no network
//!    traffic, no error. This is the weak-caching philosophy applied to
//!    fault handling: a dead target makes gets *degraded*, never makes the
//!    application crash inside the caching layer.
//!
//! The state machine per target is documented in `docs/INTERNALS.md`
//! (healthy → retrying → healthy | abandoned | degraded).

use clampi_rma::{Process, RmaError};

use crate::stats::CacheStats;

/// Retry/backoff policy for transient RMA faults (per cached window).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum number of *re*-issues after the first failed attempt.
    pub max_retries: u32,
    /// Virtual-time backoff before the first retry, in nanoseconds.
    pub backoff_base_ns: f64,
    /// Multiplier applied to the backoff after each failed retry.
    pub backoff_factor: f64,
    /// Cumulative virtual-time budget for one operation (first attempt,
    /// backoffs, and retries). When exceeded the operation is abandoned
    /// and counted in [`CacheStats::timeouts`].
    pub op_timeout_ns: f64,
}

impl Default for RetryPolicy {
    /// Four retries starting at 1 µs backoff, doubling, within a 1 ms
    /// per-operation budget — generous against sub-10% transient rates
    /// while keeping a dead target's detection cost bounded.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            backoff_base_ns: 1_000.0,
            backoff_factor: 2.0,
            op_timeout_ns: 1_000_000.0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: every transient fault is immediately
    /// abandoned (useful as a baseline in fault sweeps).
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// The backoff before retry number `attempt` (0-based), in ns.
    pub fn backoff_ns(&self, attempt: u32) -> f64 {
        self.backoff_base_ns * self.backoff_factor.powi(attempt as i32)
    }
}

/// Runs `op` under `policy`, retrying transient faults with exponential
/// backoff charged to the rank's virtual clock.
///
/// Retries and budget exhaustion are counted into `stats` (`retries`,
/// `timeouts`). Returns the last error when the operation is abandoned —
/// immediately for [`RmaError::TargetFailed`], after exhausting retries
/// or the time budget for [`RmaError::Transient`].
pub(crate) fn with_retry<T, F>(
    p: &mut Process,
    policy: &RetryPolicy,
    stats: &mut CacheStats,
    mut op: F,
) -> Result<T, RmaError>
where
    F: FnMut(&mut Process) -> Result<T, RmaError>,
{
    let start = p.clock().now();
    let mut attempt = 0u32;
    loop {
        match op(p) {
            Ok(v) => return Ok(v),
            Err(e @ RmaError::TargetFailed { .. }) => return Err(e),
            Err(e @ RmaError::Transient { .. }) => {
                if p.clock().now() - start >= policy.op_timeout_ns {
                    stats.timeouts += 1;
                    return Err(e);
                }
                if attempt >= policy.max_retries {
                    return Err(e);
                }
                stats.retries += 1;
                let deadline = p.clock().now() + policy.backoff_ns(attempt);
                p.clock_mut().advance_to(deadline);
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clampi_rma::{run_collect, FaultConfig, SimConfig};

    #[test]
    fn backoff_grows_geometrically() {
        let pol = RetryPolicy::default();
        assert_eq!(pol.backoff_ns(0), 1_000.0);
        assert_eq!(pol.backoff_ns(1), 2_000.0);
        assert_eq!(pol.backoff_ns(2), 4_000.0);
    }

    #[test]
    fn none_policy_never_retries() {
        let pol = RetryPolicy::none();
        let cfg = SimConfig::checked().with_faults(FaultConfig::transient(1.0, 1));
        let out = run_collect(cfg, 2, move |p| {
            if p.rank() != 0 {
                return (0u64, 0u64);
            }
            let mut stats = CacheStats::default();
            let mut calls = 0u64;
            let r: Result<(), _> = with_retry(p, &pol, &mut stats, |_p| {
                calls += 1;
                Err(RmaError::Transient { target: 1 })
            });
            assert!(r.is_err());
            (calls, stats.retries)
        });
        assert_eq!(out[0].1, (1, 0), "one attempt, zero retries");
    }

    #[test]
    fn retries_charge_backoff_to_the_clock() {
        let pol = RetryPolicy::default();
        let out = run_collect(SimConfig::checked(), 1, move |p| {
            let mut stats = CacheStats::default();
            let before = p.clock().now();
            let mut left = 3u32;
            let r = with_retry(p, &pol, &mut stats, |_p| {
                if left > 0 {
                    left -= 1;
                    Err(RmaError::Transient { target: 0 })
                } else {
                    Ok(())
                }
            });
            assert!(r.is_ok());
            (stats.retries, p.clock().now() - before)
        });
        let (retries, elapsed) = out[0].1;
        assert_eq!(retries, 3);
        // 1 µs + 2 µs + 4 µs of backoff.
        assert!(elapsed >= 7_000.0, "elapsed {elapsed}");
    }

    #[test]
    fn budget_exhaustion_counts_a_timeout() {
        let pol = RetryPolicy {
            max_retries: u32::MAX,
            backoff_base_ns: 10_000.0,
            backoff_factor: 2.0,
            op_timeout_ns: 50_000.0,
        };
        let out = run_collect(SimConfig::checked(), 1, move |p| {
            let mut stats = CacheStats::default();
            let r: Result<(), _> = with_retry(p, &pol, &mut stats, |_p| {
                Err(RmaError::Transient { target: 0 })
            });
            assert!(r.is_err());
            (stats.timeouts, stats.retries)
        });
        assert_eq!(out[0].1 .0, 1, "exactly one timeout recorded");
        assert!(out[0].1 .1 >= 2, "a few retries before the budget died");
    }
}
