//! Get-trace capture and offline replay.
//!
//! Tuning `|I_w|`, `|S_w|`, the victim scheme or the adaptive thresholds
//! against a full application run is slow; a *trace* of the application's
//! `get_c` stream replayed directly through the cache engine explores the
//! same policy space in milliseconds. This module provides:
//!
//! - [`Trace`]: an in-memory get/epoch/invalidate event stream with a
//!   compact little-endian binary serialization (no external format
//!   dependencies);
//! - [`replay`]: drives a [`RmaCache`] through the trace and returns the
//!   statistics plus a modelled completion time, so policies can be ranked
//!   exactly like the figure binaries rank live runs.
//!
//! The replayer feeds the cache synthetic payloads — policy decisions
//! depend only on keys and sizes, never on payload bytes.

use crate::cache::{CacheParams, LayoutSig, Lookup, RmaCache};
use crate::index::GetKey;
use crate::stats::CacheStats;

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A contiguous `get_c` of `size` bytes.
    Get {
        /// Target rank.
        target: u32,
        /// Byte displacement in the target window.
        disp: u64,
        /// Payload size in bytes.
        size: u32,
    },
    /// An epoch closure (flush/unlock in the traced run).
    EpochClose,
    /// An explicit `CLAMPI_Invalidate`.
    Invalidate,
}

/// A recorded event stream.
///
/// # Examples
///
/// ```
/// use clampi::trace::{replay, ReplayCosts, Trace};
/// use clampi::CacheParams;
///
/// let mut trace = Trace::new();
/// for _ in 0..3 {
///     trace.get(1, 0, 256); // the same get, three times
///     trace.epoch_close();
/// }
/// let result = replay(&trace, CacheParams::default(), ReplayCosts::default());
/// assert_eq!(result.stats.hits, 2); // first is a miss, rest hit
///
/// // Round-trips through the compact binary format.
/// assert_eq!(Trace::from_bytes(&trace.to_bytes()).unwrap(), trace);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

const MAGIC: &[u8; 8] = b"CLAMPITR";
const TAG_GET: u8 = 1;
const TAG_EPOCH: u8 = 2;
const TAG_INVALIDATE: u8 = 3;

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Records a contiguous get.
    pub fn get(&mut self, target: u32, disp: u64, size: u32) {
        self.events.push(TraceEvent::Get { target, disp, size });
    }

    /// Records an epoch closure.
    pub fn epoch_close(&mut self) {
        self.events.push(TraceEvent::EpochClose);
    }

    /// Records an explicit invalidation.
    pub fn invalidate(&mut self) {
        self.events.push(TraceEvent::Invalidate);
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of `Get` events.
    pub fn num_gets(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Get { .. }))
            .count()
    }

    /// Serializes to the compact binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.events.len() * 17);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.events.len() as u64).to_le_bytes());
        for e in &self.events {
            match *e {
                TraceEvent::Get { target, disp, size } => {
                    out.push(TAG_GET);
                    out.extend_from_slice(&target.to_le_bytes());
                    out.extend_from_slice(&disp.to_le_bytes());
                    out.extend_from_slice(&size.to_le_bytes());
                }
                TraceEvent::EpochClose => out.push(TAG_EPOCH),
                TraceEvent::Invalidate => out.push(TAG_INVALIDATE),
            }
        }
        out
    }

    /// Parses the binary format.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed byte sequence.
    pub fn from_bytes(data: &[u8]) -> Result<Self, String> {
        if data.len() < 16 || &data[..8] != MAGIC {
            return Err("not a CLaMPI trace (bad magic)".into());
        }
        let count = u64::from_le_bytes(data[8..16].try_into().unwrap()) as usize;
        let mut events = Vec::with_capacity(count);
        let mut at = 16;
        for i in 0..count {
            let tag = *data
                .get(at)
                .ok_or_else(|| format!("truncated at event {i}"))?;
            at += 1;
            match tag {
                TAG_GET => {
                    if data.len() < at + 16 {
                        return Err(format!("truncated get at event {i}"));
                    }
                    let target = u32::from_le_bytes(data[at..at + 4].try_into().unwrap());
                    let disp = u64::from_le_bytes(data[at + 4..at + 12].try_into().unwrap());
                    let size = u32::from_le_bytes(data[at + 12..at + 16].try_into().unwrap());
                    at += 16;
                    events.push(TraceEvent::Get { target, disp, size });
                }
                TAG_EPOCH => events.push(TraceEvent::EpochClose),
                TAG_INVALIDATE => events.push(TraceEvent::Invalidate),
                t => return Err(format!("unknown tag {t} at event {i}")),
            }
        }
        if at != data.len() {
            return Err(format!("{} trailing bytes", data.len() - at));
        }
        Ok(Trace { events })
    }

    /// Writes the trace to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads a trace from a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; malformed contents become
    /// `io::ErrorKind::InvalidData`.
    pub fn load(path: &std::path::Path) -> std::io::Result<Self> {
        let data = std::fs::read(path)?;
        Self::from_bytes(&data).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// Cost model of the replayer: what a miss and a hit cost besides the
/// cache-management time the engine itself charges.
#[derive(Debug, Clone, Copy)]
pub struct ReplayCosts {
    /// Latency of a remote get + flush (paid by every non-hit).
    pub miss_base_ns: f64,
    /// Per-byte wire cost of a remote get.
    pub miss_per_byte_ns: f64,
}

impl Default for ReplayCosts {
    fn default() -> Self {
        // The default network model's same-chassis get + sync.
        ReplayCosts {
            miss_base_ns: 120.0 + 1800.0 + 250.0,
            miss_per_byte_ns: 0.10,
        }
    }
}

/// The outcome of a replay.
#[derive(Debug, Clone)]
pub struct ReplayResult {
    /// Cache statistics over the whole trace.
    pub stats: CacheStats,
    /// Modelled completion time (management + copies + miss latencies).
    pub completion_ns: f64,
}

/// Replays `trace` through a fresh cache with `params`.
pub fn replay(trace: &Trace, params: CacheParams, costs: ReplayCosts) -> ReplayResult {
    let mut cache = RmaCache::new(params);
    let mut completion_ns = 0.0;
    let mut payload: Vec<u8> = Vec::new();
    let mut dst: Vec<u8> = Vec::new();
    for e in trace.events() {
        match *e {
            TraceEvent::Get { target, disp, size } => {
                let size = size as usize;
                if size == 0 {
                    continue;
                }
                let key = GetKey { target, disp };
                let sig = LayoutSig::Contig(size);
                dst.resize(size, 0);
                match cache.process_lookup(key, &sig, &mut dst) {
                    Lookup::Hit => {}
                    Lookup::PartialHit { cached_len } => {
                        payload.resize(size, 0);
                        completion_ns += costs.miss_base_ns
                            + (size - cached_len) as f64 * costs.miss_per_byte_ns;
                        cache.finish_partial(key, sig, &payload);
                    }
                    Lookup::Miss => {
                        payload.resize(size, 0);
                        completion_ns += costs.miss_base_ns + size as f64 * costs.miss_per_byte_ns;
                        cache.finish_miss(key, sig, &payload);
                    }
                }
            }
            TraceEvent::EpochClose => cache.epoch_close(),
            TraceEvent::Invalidate => cache.invalidate(),
        }
        completion_ns += cache.take_cost();
    }
    cache.epoch_close();
    completion_ns += cache.take_cost();
    ReplayResult {
        stats: *cache.stats(),
        completion_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::CacheCostModel;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        for round in 0..5u64 {
            for d in 0..20u64 {
                t.get(1, d * 256, 128);
                t.epoch_close();
            }
            if round == 2 {
                t.invalidate();
            }
        }
        t
    }

    #[test]
    fn roundtrip_bytes() {
        let t = sample_trace();
        let b = t.to_bytes();
        let back = Trace::from_bytes(&b).unwrap();
        assert_eq!(t, back);
        assert_eq!(back.num_gets(), 100);
    }

    #[test]
    fn roundtrip_file() {
        let t = sample_trace();
        let path = std::env::temp_dir().join("clampi_trace_test.bin");
        t.save(&path).unwrap();
        let back = Trace::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(t, back);
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(Trace::from_bytes(b"garbage").is_err());
        let mut ok = sample_trace().to_bytes();
        ok.push(0xFF); // trailing byte
        assert!(Trace::from_bytes(&ok).is_err());
        let mut truncated = sample_trace().to_bytes();
        truncated.truncate(20);
        assert!(Trace::from_bytes(&truncated).is_err());
        let mut bad_tag = sample_trace().to_bytes();
        bad_tag[16] = 99;
        assert!(Trace::from_bytes(&bad_tag).is_err());
    }

    #[test]
    fn replay_reproduces_reuse_and_invalidation() {
        let t = sample_trace();
        let r = replay(
            &t,
            CacheParams {
                index_entries: 64,
                storage_bytes: 64 << 10,
                costs: CacheCostModel::free(),
                ..CacheParams::default()
            },
            ReplayCosts::default(),
        );
        // Round 1 misses (20), rounds 2-3 hit, invalidate, round 4 misses
        // again, round 5 hits.
        assert_eq!(r.stats.total_gets, 100);
        assert_eq!(r.stats.direct, 40);
        assert_eq!(r.stats.hits, 60);
        assert_eq!(r.stats.invalidations, 1);
        assert!(r.completion_ns > 0.0);
    }

    #[test]
    fn replay_ranks_policies_like_live_runs() {
        // A tiny index must replay slower (conflict evictions) than an
        // adequate one — the property that makes offline tuning useful.
        let mut t = Trace::new();
        for _ in 0..10 {
            for d in 0..100u64 {
                t.get(0, d * 1000, 64);
                t.epoch_close();
            }
        }
        let small = replay(
            &t,
            CacheParams {
                index_entries: 8,
                storage_bytes: 1 << 20,
                ..CacheParams::default()
            },
            ReplayCosts::default(),
        );
        let big = replay(
            &t,
            CacheParams {
                index_entries: 512,
                storage_bytes: 1 << 20,
                ..CacheParams::default()
            },
            ReplayCosts::default(),
        );
        assert!(big.stats.hit_ratio() > small.stats.hit_ratio());
        assert!(big.completion_ns < small.completion_ns);
    }
}
