//! Get-trace capture and offline replay.
//!
//! Tuning `|I_w|`, `|S_w|`, the victim scheme or the adaptive thresholds
//! against a full application run is slow; a *trace* of the application's
//! `get_c` stream replayed directly through the cache engine explores the
//! same policy space in milliseconds. This module provides:
//!
//! - [`Trace`]: an in-memory get/epoch/invalidate event stream with a
//!   compact little-endian binary serialization (no external format
//!   dependencies);
//! - [`replay`]: drives a [`RmaCache`] through the trace and returns the
//!   statistics plus a modelled completion time, so policies can be ranked
//!   exactly like the figure binaries rank live runs.
//!
//! The replayer feeds the cache synthetic payloads — policy decisions
//! depend only on keys and sizes, never on payload bytes.

use crate::cache::{CacheParams, LayoutSig, Lookup, RmaCache};
use crate::index::GetKey;
use crate::stats::CacheStats;

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A contiguous `get_c` of `size` bytes.
    Get {
        /// Target rank.
        target: u32,
        /// Byte displacement in the target window.
        disp: u64,
        /// Payload size in bytes.
        size: u32,
    },
    /// An epoch closure (flush/unlock in the traced run).
    EpochClose,
    /// An invalidation restricted to the bytes `[disp, disp + len)` of
    /// `target`'s window — what a coherence pass or a per-target
    /// degradation performs. A *full* invalidation (`CLAMPI_Invalidate`)
    /// is the sentinel `target == u32::MAX` (with `disp == 0`,
    /// `len == u64::MAX`), so legacy target-less traces stay replayable.
    Invalidate {
        /// Target rank, or `u32::MAX` for a full invalidation.
        target: u32,
        /// First invalidated byte displacement.
        disp: u64,
        /// Length of the invalidated range in bytes.
        len: u64,
    },
}

/// The [`TraceEvent::Invalidate`] sentinel for a full (all-targets)
/// invalidation.
pub const INVALIDATE_ALL: TraceEvent = TraceEvent::Invalidate {
    target: u32::MAX,
    disp: 0,
    len: u64::MAX,
};

/// A recorded event stream.
///
/// # Examples
///
/// ```
/// use clampi::trace::{replay, ReplayCosts, Trace};
/// use clampi::CacheParams;
///
/// let mut trace = Trace::new();
/// for _ in 0..3 {
///     trace.get(1, 0, 256); // the same get, three times
///     trace.epoch_close();
/// }
/// let result = replay(&trace, CacheParams::default(), ReplayCosts::default());
/// assert_eq!(result.stats.hits, 2); // first is a miss, rest hit
///
/// // Round-trips through the compact binary format.
/// assert_eq!(Trace::from_bytes(&trace.to_bytes()).unwrap(), trace);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

/// Format version 2: `Invalidate` carries `(target, disp, len)`.
const MAGIC: &[u8; 8] = b"CLAMPIT2";
/// Format version 1 (read-only support): `Invalidate` is a bare tag and
/// always means a full invalidation.
const MAGIC_V1: &[u8; 8] = b"CLAMPITR";
const TAG_GET: u8 = 1;
const TAG_EPOCH: u8 = 2;
const TAG_INVALIDATE: u8 = 3;

/// Reads a little-endian `u32` at `data[at..at + 4]`; the caller has
/// already length-checked the slice.
fn le32(data: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&data[at..at + 4]);
    u32::from_le_bytes(b)
}

/// Reads a little-endian `u64` at `data[at..at + 8]`; the caller has
/// already length-checked the slice.
fn le64(data: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&data[at..at + 8]);
    u64::from_le_bytes(b)
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Records a contiguous get.
    pub fn get(&mut self, target: u32, disp: u64, size: u32) {
        self.events.push(TraceEvent::Get { target, disp, size });
    }

    /// Records an epoch closure.
    pub fn epoch_close(&mut self) {
        self.events.push(TraceEvent::EpochClose);
    }

    /// Records an explicit full invalidation (`CLAMPI_Invalidate`).
    pub fn invalidate(&mut self) {
        self.events.push(INVALIDATE_ALL);
    }

    /// Records a per-target ranged invalidation of the bytes
    /// `[disp, disp + len)` — what a coherence pass emits when it drops
    /// entries overlapping a drained put record, or a degradation path
    /// emits with `disp = 0, len = u64::MAX`.
    pub fn invalidate_range(&mut self, target: u32, disp: u64, len: u64) {
        self.events
            .push(TraceEvent::Invalidate { target, disp, len });
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of `Get` events.
    pub fn num_gets(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Get { .. }))
            .count()
    }

    /// Serializes to the compact binary format (version 2).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.events.len() * 21);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.events.len() as u64).to_le_bytes());
        for e in &self.events {
            match *e {
                TraceEvent::Get { target, disp, size } => {
                    out.push(TAG_GET);
                    out.extend_from_slice(&target.to_le_bytes());
                    out.extend_from_slice(&disp.to_le_bytes());
                    out.extend_from_slice(&size.to_le_bytes());
                }
                TraceEvent::EpochClose => out.push(TAG_EPOCH),
                TraceEvent::Invalidate { target, disp, len } => {
                    out.push(TAG_INVALIDATE);
                    out.extend_from_slice(&target.to_le_bytes());
                    out.extend_from_slice(&disp.to_le_bytes());
                    out.extend_from_slice(&len.to_le_bytes());
                }
            }
        }
        out
    }

    /// Parses the binary format. Accepts both the current version-2
    /// layout (`CLAMPIT2`, 20-byte invalidate payload) and the legacy
    /// version-1 layout (`CLAMPITR`, bare invalidate tag — decoded as a
    /// full invalidation).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed byte sequence.
    pub fn from_bytes(data: &[u8]) -> Result<Self, String> {
        let legacy = if data.len() < 16 {
            return Err("not a CLaMPI trace (too short)".into());
        } else if &data[..8] == MAGIC {
            false
        } else if &data[..8] == MAGIC_V1 {
            true
        } else {
            return Err("not a CLaMPI trace (bad magic)".into());
        };
        let count = le64(data, 8) as usize;
        let mut events = Vec::with_capacity(count);
        let mut at = 16;
        for i in 0..count {
            let tag = *data
                .get(at)
                .ok_or_else(|| format!("truncated at event {i}"))?;
            at += 1;
            match tag {
                TAG_GET => {
                    if data.len() < at + 16 {
                        return Err(format!("truncated get at event {i}"));
                    }
                    let target = le32(data, at);
                    let disp = le64(data, at + 4);
                    let size = le32(data, at + 12);
                    at += 16;
                    events.push(TraceEvent::Get { target, disp, size });
                }
                TAG_EPOCH => events.push(TraceEvent::EpochClose),
                TAG_INVALIDATE if legacy => events.push(INVALIDATE_ALL),
                TAG_INVALIDATE => {
                    if data.len() < at + 20 {
                        return Err(format!("truncated invalidate at event {i}"));
                    }
                    let target = le32(data, at);
                    let disp = le64(data, at + 4);
                    let len = le64(data, at + 12);
                    at += 20;
                    events.push(TraceEvent::Invalidate { target, disp, len });
                }
                t => return Err(format!("unknown tag {t} at event {i}")),
            }
        }
        if at != data.len() {
            return Err(format!("{} trailing bytes", data.len() - at));
        }
        Ok(Trace { events })
    }

    /// Writes the trace to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads a trace from a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; malformed contents become
    /// `io::ErrorKind::InvalidData`.
    pub fn load(path: &std::path::Path) -> std::io::Result<Self> {
        let data = std::fs::read(path)?;
        Self::from_bytes(&data).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// Cost model of the replayer: what a miss and a hit cost besides the
/// cache-management time the engine itself charges.
#[derive(Debug, Clone, Copy)]
pub struct ReplayCosts {
    /// Latency of a remote get + flush (paid by every non-hit).
    pub miss_base_ns: f64,
    /// Per-byte wire cost of a remote get.
    pub miss_per_byte_ns: f64,
}

impl Default for ReplayCosts {
    fn default() -> Self {
        // The default network model's same-chassis get + sync.
        ReplayCosts {
            miss_base_ns: 120.0 + 1800.0 + 250.0,
            miss_per_byte_ns: 0.10,
        }
    }
}

/// The outcome of a replay.
#[derive(Debug, Clone)]
pub struct ReplayResult {
    /// Cache statistics over the whole trace.
    pub stats: CacheStats,
    /// Modelled completion time (management + copies + miss latencies).
    pub completion_ns: f64,
}

/// Replays `trace` through a fresh cache with `params`.
pub fn replay(trace: &Trace, params: CacheParams, costs: ReplayCosts) -> ReplayResult {
    let mut cache = RmaCache::new(params);
    let mut completion_ns = 0.0;
    let mut payload: Vec<u8> = Vec::new();
    let mut dst: Vec<u8> = Vec::new();
    for e in trace.events() {
        match *e {
            TraceEvent::Get { target, disp, size } => {
                let size = size as usize;
                if size == 0 {
                    continue;
                }
                let key = GetKey { target, disp };
                let sig = LayoutSig::Contig(size);
                dst.resize(size, 0);
                match cache.process_lookup(key, &sig, &mut dst) {
                    Lookup::Hit => {}
                    Lookup::PartialHit { cached_len } => {
                        payload.resize(size, 0);
                        completion_ns += costs.miss_base_ns
                            + (size - cached_len) as f64 * costs.miss_per_byte_ns;
                        cache.finish_partial(key, sig, &payload, 0);
                    }
                    Lookup::Miss => {
                        payload.resize(size, 0);
                        completion_ns += costs.miss_base_ns + size as f64 * costs.miss_per_byte_ns;
                        cache.finish_miss(key, sig, &payload, 0);
                    }
                }
            }
            TraceEvent::EpochClose => cache.epoch_close(),
            e if e == INVALIDATE_ALL => cache.invalidate(),
            TraceEvent::Invalidate { target, disp, len } => {
                cache.invalidate_range(target, disp, disp.saturating_add(len));
            }
        }
        completion_ns += cache.take_cost();
    }
    cache.epoch_close();
    completion_ns += cache.take_cost();
    ReplayResult {
        stats: *cache.stats(),
        completion_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::CacheCostModel;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        for round in 0..5u64 {
            for d in 0..20u64 {
                t.get(1, d * 256, 128);
                t.epoch_close();
            }
            if round == 2 {
                t.invalidate();
            }
        }
        t
    }

    #[test]
    fn roundtrip_bytes() {
        let t = sample_trace();
        let b = t.to_bytes();
        let back = Trace::from_bytes(&b).unwrap();
        assert_eq!(t, back);
        assert_eq!(back.num_gets(), 100);
    }

    #[test]
    fn roundtrip_file() {
        let t = sample_trace();
        let path = std::env::temp_dir().join("clampi_trace_test.bin");
        t.save(&path).unwrap();
        let back = Trace::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(t, back);
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(Trace::from_bytes(b"garbage").is_err());
        let mut ok = sample_trace().to_bytes();
        ok.push(0xFF); // trailing byte
        assert!(Trace::from_bytes(&ok).is_err());
        let mut truncated = sample_trace().to_bytes();
        truncated.truncate(20);
        assert!(Trace::from_bytes(&truncated).is_err());
        let mut bad_tag = sample_trace().to_bytes();
        bad_tag[16] = 99;
        assert!(Trace::from_bytes(&bad_tag).is_err());
        // A v2 invalidate must carry its 20-byte payload.
        let mut t = Trace::new();
        t.invalidate_range(1, 0, 64);
        let mut cut = t.to_bytes();
        cut.truncate(cut.len() - 4);
        assert!(Trace::from_bytes(&cut).is_err());
    }

    #[test]
    fn ranged_invalidates_roundtrip() {
        let mut t = Trace::new();
        t.get(2, 128, 64);
        t.epoch_close();
        t.invalidate_range(2, 128, 64);
        t.invalidate_range(7, 0, u64::MAX); // full per-target drop
        t.invalidate(); // full invalidation sentinel
        let back = Trace::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(back, t);
        assert_eq!(
            back.events()[2],
            TraceEvent::Invalidate {
                target: 2,
                disp: 128,
                len: 64
            }
        );
        assert_eq!(back.events()[4], INVALIDATE_ALL);
    }

    #[test]
    fn legacy_v1_traces_still_parse() {
        // Hand-build a v1 stream: one get, one epoch, one bare invalidate.
        let mut v1 = Vec::new();
        v1.extend_from_slice(b"CLAMPITR");
        v1.extend_from_slice(&3u64.to_le_bytes());
        v1.push(TAG_GET);
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&256u64.to_le_bytes());
        v1.extend_from_slice(&128u32.to_le_bytes());
        v1.push(TAG_EPOCH);
        v1.push(TAG_INVALIDATE); // bare: no payload in v1
        let t = Trace::from_bytes(&v1).unwrap();
        assert_eq!(
            t.events(),
            &[
                TraceEvent::Get {
                    target: 1,
                    disp: 256,
                    size: 128
                },
                TraceEvent::EpochClose,
                INVALIDATE_ALL,
            ]
        );
        // The legacy full invalidation replays as a total cache drop.
        let r = replay(&t, CacheParams::default(), ReplayCosts::default());
        assert_eq!(r.stats.invalidations, 1);
    }

    #[test]
    fn replay_ranged_invalidation_is_surgical() {
        // Two cached blocks; invalidating one range must only re-miss the
        // overlapped block.
        let mut t = Trace::new();
        t.get(0, 0, 128);
        t.get(0, 4096, 128);
        t.epoch_close();
        t.invalidate_range(0, 0, 128); // hits only the first block
        t.get(0, 0, 128); // miss again
        t.get(0, 4096, 128); // still a hit
        t.epoch_close();
        let r = replay(
            &t,
            CacheParams {
                index_entries: 64,
                storage_bytes: 64 << 10,
                costs: CacheCostModel::free(),
                ..CacheParams::default()
            },
            ReplayCosts::default(),
        );
        assert_eq!(r.stats.total_gets, 4);
        assert_eq!(r.stats.direct, 3, "the invalidated block re-missed");
        assert_eq!(r.stats.hits, 1, "the untouched block kept hitting");
    }

    #[test]
    fn replay_reproduces_reuse_and_invalidation() {
        let t = sample_trace();
        let r = replay(
            &t,
            CacheParams {
                index_entries: 64,
                storage_bytes: 64 << 10,
                costs: CacheCostModel::free(),
                ..CacheParams::default()
            },
            ReplayCosts::default(),
        );
        // Round 1 misses (20), rounds 2-3 hit, invalidate, round 4 misses
        // again, round 5 hits.
        assert_eq!(r.stats.total_gets, 100);
        assert_eq!(r.stats.direct, 40);
        assert_eq!(r.stats.hits, 60);
        assert_eq!(r.stats.invalidations, 1);
        assert!(r.completion_ns > 0.0);
    }

    #[test]
    fn replay_ranks_policies_like_live_runs() {
        // A tiny index must replay slower (conflict evictions) than an
        // adequate one — the property that makes offline tuning useful.
        let mut t = Trace::new();
        for _ in 0..10 {
            for d in 0..100u64 {
                t.get(0, d * 1000, 64);
                t.epoch_close();
            }
        }
        let small = replay(
            &t,
            CacheParams {
                index_entries: 8,
                storage_bytes: 1 << 20,
                ..CacheParams::default()
            },
            ReplayCosts::default(),
        );
        let big = replay(
            &t,
            CacheParams {
                index_entries: 512,
                storage_bytes: 1 << 20,
                ..CacheParams::default()
            },
            ReplayCosts::default(),
        );
        assert!(big.stats.hit_ratio() > small.stats.hit_ratio());
        assert!(big.completion_ns < small.completion_ns);
    }
}
