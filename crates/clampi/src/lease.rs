//! Lease-based eviction: predicted reuse distances as expiry clocks.
//!
//! Instead of scoring victims at eviction time, the lease policy decides
//! an entry's lifetime at *access* time: every access assigns the entry a
//! **lease** — a number of future gets the entry is expected to stay
//! useful for — and eviction prefers entries whose lease has expired
//! under the engine's get-sequence clock (the same deterministic counter
//! that drives the temporal score, so lease runs stay bit-reproducible).
//!
//! Leases are *predicted reuse distances*, learned online:
//!
//! - every access is recorded in a fixed-size, direct-mapped **last-seen
//!   tag table**; when the same key returns, the gap between the two
//!   sequence numbers is its observed reuse distance — measured across
//!   evictions too, which the resident-entry `last` field alone cannot
//!   do;
//! - distances feed per-**stripe** histograms (the key's mixed hash
//!   selects one of [`STRIPES`] reference groups) with logarithmic
//!   buckets, periodically halved so the predictor tracks phase changes;
//! - an assignment draws from a **dual-lease table**: a *short* lease
//!   (the stripe's median reuse distance) or a *long* one (its 95th
//!   percentile), the long one chosen with probability `p_long`. Mixing
//!   the two leases is what lets the policy hit a *target cache size*
//!   that lies between "keep only the provably-hot half" and "keep
//!   everything until the tail returns": `p_long` is steered by a
//!   feedback loop on the observed storage pressure (used fraction of
//!   the byte budget), shrinking leases when the cache overfills and
//!   stretching them when space goes unused.
//!
//! The table is O(1) per access: one tag-table slot, one histogram
//! update, two cumulative scans over a fixed 32-bucket histogram.
//! [`crate::cache`] consults it for the live [`VictimScheme::Lease`]
//! policy; the tag-only shadow caches in [`crate::vcache`] embed their
//! own private copies so the lab never perturbs the live predictor.
//!
//! [`VictimScheme::Lease`]: crate::VictimScheme::Lease

use clampi_prng::{SmallRng, SplitMix64};

/// Reference groups: reuse histograms are kept per key-hash stripe, so
/// keys with different reuse behaviour (hot head vs. scanned tail) get
/// different lease predictions even though the predictor never stores
/// per-key state.
pub const STRIPES: usize = 64;

/// Logarithmic reuse-distance buckets: bucket `b` covers distances in
/// `[2^b, 2^(b+1))`, so 32 buckets reach any practical stream length.
const BUCKETS: usize = 32;

/// Histogram mass at which counts are halved (sliding the window toward
/// recent behaviour without storing a full history).
const DECAY_AT: u64 = 8192;

/// Observations a stripe needs before its quantiles are trusted over the
/// cold-start default lease.
const MIN_SAMPLES: u64 = 16;

/// Quantiles of the dual-lease table: the short lease covers the median
/// reuse, the long lease the distribution's tail.
const SHORT_Q: f64 = 0.50;
const LONG_Q: f64 = 0.95;

/// Storage pressure the feedback loop steers towards: just below full,
/// so the byte budget is used but capacity evictions stay rare.
const TARGET_PRESSURE: f64 = 0.90;

/// Feedback gain on `p_long` per assignment. Small: `p_long` moves by at
/// most this much per get, so one noisy pressure reading cannot flip the
/// mix.
const GAIN: f64 = 0.01;

/// One stripe's log-bucketed reuse-distance histogram.
#[derive(Debug, Clone)]
struct ReuseHistogram {
    counts: [u32; BUCKETS],
    total: u64,
}

impl ReuseHistogram {
    fn new() -> Self {
        ReuseHistogram {
            counts: [0; BUCKETS],
            total: 0,
        }
    }

    fn record(&mut self, distance: u64) {
        let b = (63 - distance.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.counts[b] += 1;
        self.total += 1;
        if self.total >= DECAY_AT {
            self.total = 0;
            for c in &mut self.counts {
                *c /= 2;
                self.total += u64::from(*c);
            }
        }
    }

    /// Upper bound of the smallest bucket whose cumulative mass reaches
    /// quantile `q`, i.e. a distance that covers a `q` fraction of the
    /// observed reuses. `None` until [`MIN_SAMPLES`] observations.
    fn quantile(&self, q: f64) -> Option<u64> {
        if self.total < MIN_SAMPLES {
            return None;
        }
        let need = (q * self.total as f64).ceil() as u64;
        let mut acc = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            acc += u64::from(c);
            if acc >= need {
                return Some(1u64 << (b + 1).min(63));
            }
        }
        Some(1u64 << BUCKETS)
    }
}

/// The dual-lease probabilistic table: per-stripe reuse histograms, a
/// last-seen tag table for measuring distances, and the short/long mix
/// probability steered to a target cache size. See the module docs.
#[derive(Debug, Clone)]
pub struct LeaseTable {
    hists: Vec<ReuseHistogram>,
    /// Direct-mapped last-seen table: `(tag, last sequence number)`;
    /// colliding tags overwrite each other (an O(1) approximation that
    /// loses some distances but never fabricates one).
    seen: Vec<(u64, u64)>,
    seen_mask: usize,
    /// Probability that an assignment takes the long lease.
    p_long: f64,
    rng: SmallRng,
    /// Cold-start lease and the unit of the lease cap, in gets: scaled
    /// to the number of entries the cache can hold, i.e. roughly one
    /// cache turnover.
    scale: u64,
    /// Leases assigned (short + long).
    assigned: u64,
    /// Of those, long leases.
    long_assigned: u64,
}

impl LeaseTable {
    /// A table scaled to a cache that holds about `scale_entries`
    /// entries; `seed` fixes the probabilistic short/long choice.
    pub fn new(scale_entries: usize, seed: u64) -> Self {
        let slots = (scale_entries.max(32) * 2)
            .next_power_of_two()
            .clamp(64, 1 << 20);
        LeaseTable {
            hists: vec![ReuseHistogram::new(); STRIPES],
            seen: vec![(0, 0); slots],
            seen_mask: slots - 1,
            p_long: 0.5,
            rng: SmallRng::seed_from_u64(seed ^ 0x1EA5_E5EE_D000_0001),
            scale: scale_entries.max(32) as u64,
            assigned: 0,
            long_assigned: 0,
        }
    }

    fn stripe(tag: u64) -> usize {
        // The tag is already a finalized hash; any bit window is uniform.
        (tag >> 7) as usize & (STRIPES - 1)
    }

    /// Records the access to `tag` at sequence number `now` (measuring a
    /// reuse distance if the tag was seen before) and returns the
    /// absolute expiry (`now + lease`) of a freshly assigned lease.
    ///
    /// `pressure` is the observed used fraction of the byte budget; the
    /// feedback loop nudges `p_long` so pressure converges to
    /// [`TARGET_PRESSURE`].
    pub fn observe_and_assign(&mut self, tag: u64, now: u64, pressure: f64) -> u64 {
        // Measure and learn.
        let slot = (SplitMix64::new(tag).next_u64() as usize) & self.seen_mask;
        let (seen_tag, seen_at) = self.seen[slot];
        let stripe = Self::stripe(tag);
        if seen_tag == tag && now > seen_at {
            self.hists[stripe].record(now - seen_at);
        }
        self.seen[slot] = (tag, now);

        // Steer the short/long mix toward the target pressure.
        if pressure.is_finite() {
            self.p_long = (self.p_long + GAIN * (TARGET_PRESSURE - pressure)).clamp(0.0, 1.0);
        }

        // Assign: dual lease, capped at a few cache turnovers so a junk
        // prediction cannot pin an entry forever.
        let cap = self.scale.saturating_mul(16);
        let cold = self.scale * 2;
        let short = self.hists[stripe]
            .quantile(SHORT_Q)
            .unwrap_or(cold)
            .min(cap);
        let long = self.hists[stripe]
            .quantile(LONG_Q)
            .unwrap_or(cold)
            .clamp(short, cap);
        self.assigned += 1;
        let lease = if self.rng.gen_bool(self.p_long) {
            self.long_assigned += 1;
            long
        } else {
            short
        };
        now.saturating_add(lease)
    }

    /// The current long-lease probability (diagnostics).
    pub fn p_long(&self) -> f64 {
        self.p_long
    }

    /// `(total, long)` lease assignments so far (diagnostics).
    pub fn assignments(&self) -> (u64, u64) {
        (self.assigned, self.long_assigned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_the_observed_distances() {
        let mut h = ReuseHistogram::new();
        for _ in 0..100 {
            h.record(10); // bucket 3: [8, 16)
        }
        for _ in 0..5 {
            h.record(1000); // bucket 9: [512, 1024)
        }
        let median = h.quantile(0.5).expect("enough samples");
        let tail = h.quantile(0.95).expect("enough samples");
        assert_eq!(median, 16, "median covers the hot mass");
        assert!(tail >= median);
    }

    #[test]
    fn quantile_needs_min_samples() {
        let mut h = ReuseHistogram::new();
        for _ in 0..(MIN_SAMPLES - 1) {
            h.record(8);
        }
        assert_eq!(h.quantile(0.5), None);
        h.record(8);
        assert!(h.quantile(0.5).is_some());
    }

    #[test]
    fn decay_halves_mass_and_keeps_totals_consistent() {
        let mut h = ReuseHistogram::new();
        for _ in 0..DECAY_AT {
            h.record(4);
        }
        assert!(h.total < DECAY_AT, "decay must have fired");
        let sum: u64 = h.counts.iter().map(|&c| u64::from(c)).sum();
        assert_eq!(sum, h.total);
    }

    #[test]
    fn repeated_short_reuse_earns_short_leases() {
        let mut t = LeaseTable::new(256, 7);
        let mut now = 0u64;
        // Key 42 returns every 4 gets; after warm-up its lease should be
        // far below the cold-start default (2 * scale = 512).
        let mut last_expiry = 0;
        for _ in 0..200 {
            now += 4;
            last_expiry = t.observe_and_assign(42 << 8, now, 0.9);
        }
        let lease = last_expiry - now;
        assert!(lease <= 64, "predicted lease {lease} for distance-4 reuse");
    }

    #[test]
    fn pressure_feedback_steers_p_long() {
        let mut t = LeaseTable::new(256, 7);
        for i in 0..500u64 {
            t.observe_and_assign(i << 8, i, 1.0); // overfull
        }
        assert!(t.p_long() < 0.2, "overfull cache must shorten leases");
        let mut t = LeaseTable::new(256, 7);
        for i in 0..500u64 {
            t.observe_and_assign(i << 8, i, 0.1); // mostly empty
        }
        assert!(t.p_long() > 0.8, "empty cache must stretch leases");
    }

    #[test]
    fn assignments_are_deterministic_under_seed() {
        let mut a = LeaseTable::new(128, 9);
        let mut b = LeaseTable::new(128, 9);
        for i in 0..300u64 {
            let ea = a.observe_and_assign(i % 40, i, 0.5);
            let eb = b.observe_and_assign(i % 40, i, 0.5);
            assert_eq!(ea, eb);
        }
        assert_eq!(a.assignments(), b.assignments());
    }
}
