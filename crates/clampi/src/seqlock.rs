//! The seqlock protocol, extracted from the shard front so the model
//! checker can exercise the *shipped* ordering code.
//!
//! [`SeqLock`] owns exactly the four ordering-sensitive operations of the
//! classic seqlock recipe (Boehm, *Can seqlocks get along with programming
//! language memory models?*); [`crate::shard`] composes them with its
//! locking and statistics, which carry no ordering obligations of their
//! own. The counter lives behind [`crate::sync_shim::McAtomicU64`], so
//! under `--cfg clampi_mc` the `mc_*` unit tests model-check these exact
//! lines — see the `mc_tests` module at the bottom of this file — while a
//! normal build compiles to the same instructions `shard.rs` inlined
//! before the extraction.
//!
//! Protocol: a writer does `store(s+1, Relaxed)`, `fence(Release)`,
//! mutates, `store(s+2, Release)`. A reader does `load(Acquire)`, probes,
//! `fence(Acquire)`, re-loads `Relaxed` and compares. If the second load
//! still sees the first (even) value, no writer published between the two
//! loads and the probed bytes are consistent; otherwise the probe is
//! discarded. The writer's Release fence and the reader's Acquire fence
//! are the synchronizing pair: they order the data mutation before the
//! even store as observed through the counter re-load.

use std::sync::atomic::Ordering;

use crate::sync_shim::{mc_fence, McAtomicU64};

/// A sequence counter implementing the seqlock ordering protocol.
///
/// The caller supplies mutual exclusion between writers (shard.rs uses its
/// `RwLock`); `SeqLock` supplies only the reader/writer memory ordering.
/// Each method is `#[inline]` so composed fast paths match the
/// pre-extraction codegen.
#[derive(Debug)]
pub struct SeqLock {
    seq: McAtomicU64,
}

impl SeqLock {
    /// A fresh counter at sequence 0 (even: no writer inside).
    pub const fn new() -> Self {
        SeqLock {
            seq: McAtomicU64::new(0),
        }
    }

    /// Enters the writer critical section: bumps the counter to odd and
    /// issues the Release fence that orders the subsequent mutation after
    /// the odd store. Returns the pre-entry sequence for
    /// [`SeqLock::write_end`]. Callers must already hold the exclusive
    /// writer lock — the parity `debug_assert` catches nesting.
    #[inline]
    pub fn write_begin(&self) -> u64 {
        let s = self.seq.load(Ordering::Relaxed);
        debug_assert_eq!(s & 1, 0, "nested writer on one seqlock");
        self.seq.store(s + 1, Ordering::Relaxed);
        // Pairs with the Acquire fence in `read_validate`: together they
        // order the writer's mutation against the reader's probe whenever
        // the reader's second counter load observes this writer.
        mc_fence(Ordering::Release);
        s
    }

    /// Leaves the writer critical section entered by
    /// [`SeqLock::write_begin`]: publishes the mutation with a releasing
    /// store of the next even sequence.
    #[inline]
    pub fn write_end(&self, s: u64) {
        self.seq.store(s + 2, Ordering::Release);
    }

    /// Begins an optimistic read: returns `Some(s1)` to probe against, or
    /// `None` if a writer is inside (odd counter) and the caller should
    /// spin or fall back.
    #[inline]
    pub fn read_begin(&self) -> Option<u64> {
        let s1 = self.seq.load(Ordering::Acquire);
        if s1 & 1 == 1 {
            None
        } else {
            Some(s1)
        }
    }

    /// Validates an optimistic read begun at `s1`: `true` means no writer
    /// published a mutation while the caller probed, so the probed bytes
    /// may be used; `false` means the probe must be discarded.
    #[inline]
    pub fn read_validate(&self, s1: u64) -> bool {
        // Pairs with the Release fence in `write_begin`: orders the probe
        // before this re-load, so a racing writer's odd store is visible.
        mc_fence(Ordering::Acquire);
        self.seq.load(Ordering::Relaxed) == s1
    }
}

impl Default for SeqLock {
    fn default() -> Self {
        SeqLock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_cycle_restores_parity() {
        let sl = SeqLock::new();
        let s = sl.write_begin();
        assert_eq!(s, 0);
        assert_eq!(sl.read_begin(), None, "odd counter must block readers");
        sl.write_end(s);
        assert_eq!(sl.read_begin(), Some(2));
        assert!(sl.read_validate(2));
    }

    #[test]
    fn validation_rejects_intervening_writer() {
        let sl = SeqLock::new();
        let s1 = sl.read_begin().expect("fresh lock is even");
        let s = sl.write_begin();
        sl.write_end(s);
        assert!(!sl.read_validate(s1), "a completed write must invalidate");
    }
}

/// Model checks of the shipped protocol above, compiled only under
/// `--cfg clampi_mc` (the `mc-test` CI stage). These drive the *same*
/// `write_begin`/`read_begin`/`read_validate` code the shard front ships,
/// with the facade swapped to tracked atomics.
#[cfg(all(test, clampi_mc))]
mod mc_tests {
    use super::*;
    use std::sync::atomic::Ordering::Relaxed;
    use std::sync::Arc;

    /// One writer mutating a two-word payload through the shipped writer
    /// protocol, one reader doing a single optimistic attempt of the
    /// shipped reader protocol. Asserts the two checked properties from
    /// the issue: no torn read escapes validation, and writer parity is
    /// restored.
    fn shipped_seqlock_body() {
        let sl = Arc::new(SeqLock::new());
        let d0 = Arc::new(clampi_mc::TrackedU64::with_label(0, "d0"));
        let d1 = Arc::new(clampi_mc::TrackedU64::with_label(0, "d1"));
        let (sl_w, d0_w, d1_w) = (sl.clone(), d0.clone(), d1.clone());
        let writer = clampi_mc::spawn(move || {
            let s = sl_w.write_begin();
            d0_w.store(2, Relaxed);
            d1_w.store(2, Relaxed);
            sl_w.write_end(s);
        });
        if let Some(s1) = sl.read_begin() {
            let a = d0.load(Relaxed);
            let b = d1.load(Relaxed);
            if sl.read_validate(s1) {
                assert_eq!(a, b, "torn read escaped seqlock validation");
            }
        }
        writer.join();
        assert_eq!(
            sl.read_begin().map(|s| s & 1),
            Some(0),
            "writer counter parity not restored"
        );
    }

    #[test]
    fn mc_shipped_seqlock_no_torn_reads() {
        let report = clampi_mc::check(clampi_mc::Config::smoke(), shipped_seqlock_body);
        report.assert_pass();
    }

    #[test]
    fn mc_shipped_seqlock_full_exploration_when_unbounded() {
        // Under CLAMPI_MC_FULL=1 `smoke()` lifts the preemption bound and
        // this is the exhaustive run; otherwise exercise it here directly.
        let report = clampi_mc::check(clampi_mc::Config::default(), shipped_seqlock_body);
        report.assert_pass();
        assert!(!report.truncated, "unbounded exploration must be complete");
    }

    /// Two back-to-back writers (serialized, as the shard's write lock
    /// guarantees) with a concurrent reader: validation must also reject
    /// a probe spanning two complete write cycles (ABA on the counter is
    /// impossible because the sequence is monotone).
    #[test]
    fn mc_shipped_seqlock_two_writes_monotone_counter() {
        let report = clampi_mc::check(clampi_mc::Config::smoke(), || {
            let sl = Arc::new(SeqLock::new());
            let d = Arc::new(clampi_mc::TrackedU64::with_label(0, "d"));
            let (sl_w, d_w) = (sl.clone(), d.clone());
            let writer = clampi_mc::spawn(move || {
                for v in [1u64, 2] {
                    let s = sl_w.write_begin();
                    d_w.store(v, Relaxed);
                    sl_w.write_end(s);
                }
            });
            if let Some(s1) = sl.read_begin() {
                let v = d.load(Relaxed);
                if sl.read_validate(s1) {
                    // A validated probe saw a quiescent payload: one of
                    // the three stable values, never a mix (single word
                    // here, so the property is value-set membership).
                    assert!(v <= 2, "validated probe saw impossible value");
                    // Validation at s1 means no write_end landed in
                    // between: the value is determined by s1's height.
                    assert_eq!(v, s1 / 2, "payload inconsistent with sequence");
                }
            }
            writer.join();
        });
        report.assert_pass();
    }
}
