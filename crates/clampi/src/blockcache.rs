//! The "native" baseline: a direct-mapped, fixed-block-size software cache.
//!
//! The paper's Barnes-Hut evaluation (Fig. 12) compares CLaMPI against an
//! ad-hoc caching system included in the reference UPC implementation,
//! described as "a block-based software cache with direct mapping, hence
//! the number of conflicts is strictly related to the available memory
//! size". This module reimplements that design over the RMA simulator:
//!
//! - the cache memory is divided into `memory_bytes / block_size` blocks;
//! - a request for `[disp, disp + len)` is split at block boundaries; each
//!   covering block maps to exactly one cache slot (direct mapping) keyed
//!   by `(target, block number)`;
//! - a miss fetches the *whole* block (internal fragmentation: small
//!   requests drag in `block_size` bytes), a hit copies locally;
//! - invalidation is explicit, as in the UPC code.

use clampi_datatype::{Block, Datatype, FlatLayout};
use clampi_rma::{Process, Window};

use crate::costs::CacheCostModel;

/// Configuration of the block cache.
#[derive(Debug, Clone)]
pub struct BlockCacheConfig {
    /// Fixed block size in bytes.
    pub block_size: usize,
    /// Total cache memory (the comparison knob in Fig. 12).
    pub memory_bytes: usize,
    /// CPU cost model shared with CLaMPI for a fair comparison.
    pub costs: CacheCostModel,
}

impl Default for BlockCacheConfig {
    fn default() -> Self {
        BlockCacheConfig {
            block_size: 512,
            memory_bytes: 1 << 20,
            costs: CacheCostModel::default(),
        }
    }
}

/// Counters of the block cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockCacheStats {
    /// Gets processed.
    pub total_gets: u64,
    /// Block lookups that hit.
    pub block_hits: u64,
    /// Block lookups that missed (each triggers a block fetch).
    pub block_misses: u64,
    /// Bytes fetched from the network (whole blocks).
    pub bytes_fetched: u64,
    /// Bytes served from cache memory.
    pub bytes_from_cache: u64,
    /// Explicit invalidations.
    pub invalidations: u64,
}

impl BlockCacheStats {
    /// Block-level hit ratio.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.block_hits + self.block_misses;
        if total == 0 {
            0.0
        } else {
            self.block_hits as f64 / total as f64
        }
    }
}

/// An RMA window fronted by the direct-mapped block cache.
#[derive(Debug)]
pub struct BlockCachedWindow {
    win: Window,
    block_size: usize,
    tags: Vec<Option<(u32, u64)>>,
    data: Vec<u8>,
    costs: CacheCostModel,
    stats: BlockCacheStats,
}

impl BlockCachedWindow {
    /// Collectively creates a window of `size` local bytes fronted by the
    /// block cache.
    ///
    /// # Panics
    ///
    /// Panics if `block_size == 0` or the memory holds no block.
    pub fn create(p: &mut Process, size: usize, cfg: BlockCacheConfig) -> Self {
        let win = p.win_allocate(size);
        Self::wrap(win, cfg)
    }

    /// Wraps an existing window.
    pub fn wrap(win: Window, cfg: BlockCacheConfig) -> Self {
        assert!(cfg.block_size > 0, "block size must be positive");
        let nblocks = cfg.memory_bytes / cfg.block_size;
        assert!(nblocks > 0, "cache memory smaller than one block");
        BlockCachedWindow {
            win,
            block_size: cfg.block_size,
            tags: vec![None; nblocks],
            data: vec![0u8; nblocks * cfg.block_size],
            costs: cfg.costs,
            stats: BlockCacheStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> BlockCacheStats {
        self.stats
    }

    /// The wrapped window.
    pub fn inner_mut(&mut self) -> &mut Window {
        &mut self.win
    }

    /// This rank's exposed region, mutable.
    pub fn local_mut(&self) -> clampi_rma::MappedWriteGuard<'_> {
        self.win.local_mut()
    }

    /// Direct-mapped slot of `(target, block)`.
    fn slot_of(&self, target: usize, block: u64) -> usize {
        let x = block
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((target as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        ((x >> 32) as usize) % self.tags.len()
    }

    /// A cached contiguous get. Non-contiguous datatypes bypass the cache
    /// (the UPC system only handles linear ranges).
    pub fn get(
        &mut self,
        p: &mut Process,
        dst: &mut [u8],
        target: usize,
        disp: usize,
        dtype: &Datatype,
        count: usize,
    ) {
        let layout = dtype.flatten_n(count);
        if !layout.is_dense() {
            self.win.get_flat(p, dst, target, disp, &layout);
            return;
        }
        let len = layout.total_size();
        self.stats.total_gets += 1;
        if len == 0 {
            return;
        }
        let bs = self.block_size;
        let win_size = self.win.size_of(target);
        let first = (disp / bs) as u64;
        let last = ((disp + len - 1) / bs) as u64;
        for block in first..=last {
            let blk_start = block as usize * bs;
            let blk_end = (blk_start + bs).min(win_size);
            let slot = self.slot_of(target, block);
            p.clock_mut().charge_cpu(self.costs.lookup_ns);
            if self.tags[slot] != Some((target as u32, block)) {
                // Miss: fetch the whole (clamped) block.
                self.stats.block_misses += 1;
                let fetch_len = blk_end - blk_start;
                let fetch = FlatLayout::new(vec![Block {
                    offset: 0,
                    len: fetch_len,
                }]);
                let buf = &mut self.data[slot * bs..slot * bs + fetch_len];
                self.win.get_flat(p, buf, target, blk_start, &fetch);
                // The block must be consumed now, so the fetch cannot stay
                // outstanding: synchronous block fill (this is why the
                // native cache overlaps worse than CLaMPI's miss path).
                p.clock_mut().wait_target(target);
                self.tags[slot] = Some((target as u32, block));
                self.stats.bytes_fetched += fetch_len as u64;
            } else {
                self.stats.block_hits += 1;
            }
            // Copy the intersection of the block with the request.
            let lo = disp.max(blk_start);
            let hi = (disp + len).min(blk_end);
            let src = &self.data[slot * bs + (lo - blk_start)..slot * bs + (hi - blk_start)];
            dst[lo - disp..hi - disp].copy_from_slice(src);
            let copy_cost = self.costs.memcpy_cost(hi - lo);
            p.clock_mut().charge_cpu(copy_cost);
            self.stats.bytes_from_cache += (hi - lo) as u64;
        }
    }

    /// Drops every cached block.
    pub fn invalidate(&mut self) {
        self.tags.iter_mut().for_each(|t| *t = None);
        self.stats.invalidations += 1;
    }

    /// MPI_Win_flush passthrough.
    pub fn flush(&mut self, p: &mut Process, target: usize) {
        self.win.flush(p, target);
    }

    /// MPI_Win_flush_all passthrough.
    pub fn flush_all(&mut self, p: &mut Process) {
        self.win.flush_all(p);
    }

    /// MPI_Win_lock_all passthrough.
    pub fn lock_all(&mut self, p: &mut Process) {
        self.win.lock_all(p);
    }

    /// MPI_Win_unlock_all passthrough.
    pub fn unlock_all(&mut self, p: &mut Process) {
        self.win.unlock_all(p);
    }
}
