//! Caching-enabled windows: the user-facing CLaMPI API (Sec. III-A).
//!
//! [`CachedWindow`] wraps an RMA [`Window`] and transparently routes `get`s
//! through the caching engine. The operational mode — the paper's
//! MPI_INFO-key choices — controls invalidation:
//!
//! - [`Mode::Transparent`]: no code changes, cache invalidated at every
//!   epoch closure (safe for arbitrary access patterns);
//! - [`Mode::AlwaysCache`]: the window is read-only for its entire
//!   lifespan (e.g. a static graph) — never invalidated automatically;
//! - [`Mode::UserDefined`]: like always-cache, but the application marks
//!   the end of a read-only phase with [`CachedWindow::invalidate`]
//!   (the paper's `CLAMPI_Invalidate`);
//! - [`Mode::Disabled`]: plain pass-through to the underlying RMA window
//!   (the "foMPI" baseline in every benchmark).
//!
//! Puts and synchronization calls delegate to the inner window; every
//! epoch-closing call (`flush`, `flush_all`, `unlock`, `unlock_all`,
//! `fence`) additionally runs the cache's epoch hook and, when enabled,
//! the adaptive controller.

use clampi_datatype::{Block, Datatype, FlatLayout};
use clampi_rma::{LockKind, Process, RmaError, StagedGet, Window};

use crate::adaptive::{AdaptiveController, AdaptiveParams};
use crate::cache::{CacheParams, LayoutSig, Lookup, RmaCache};
use crate::coherence::{CoherenceMode, CoherenceTracker};
use crate::index::GetKey;
use crate::recovery::{with_retry, RetryPolicy};
use crate::snapshot::{
    choose_timestamp, ReqBound, SnapReq, SnapStamp, SnapshotCtx, SnapshotError, SnapshotInfo,
};
use crate::stats::CacheStats;

/// Operational mode of a caching-enabled window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Cache disabled: every get goes to the network (baseline).
    Disabled,
    /// Cache everything, invalidate at each epoch closure.
    #[default]
    Transparent,
    /// Window is read-only forever: never invalidate automatically.
    AlwaysCache,
    /// Read-only phases delimited by explicit
    /// [`CachedWindow::invalidate`] calls.
    UserDefined,
}

/// Creation-time configuration (the MPI_INFO object of the paper).
#[derive(Debug, Clone, Default)]
pub struct ClampiConfig {
    /// Operational mode.
    pub mode: Mode,
    /// Cache parameters (`|I_w|`, `|S_w|`, victim scheme, costs, seed).
    pub params: CacheParams,
    /// `Some` enables the *adaptive* strategy; `None` is the *fixed* one.
    pub adaptive: Option<AdaptiveParams>,
    /// Extension beyond the paper: drop cached entries that overlap this
    /// rank's own puts, keeping an always-cache window coherent with local
    /// writers without a full invalidation. Off by default (the paper
    /// relies purely on epoch semantics).
    pub invalidate_on_put: bool,
    /// Retry/backoff policy for transient RMA faults (only relevant when
    /// the simulator injects faults; with faults disabled no retry path
    /// is ever taken).
    pub retry: RetryPolicy,
}

impl ClampiConfig {
    /// A disabled (pass-through, "foMPI") configuration.
    pub fn disabled() -> Self {
        ClampiConfig {
            mode: Mode::Disabled,
            ..ClampiConfig::default()
        }
    }

    /// A fixed-parameter configuration in the given mode.
    pub fn fixed(mode: Mode, params: CacheParams) -> Self {
        ClampiConfig {
            mode,
            params,
            adaptive: None,
            invalidate_on_put: false,
            retry: RetryPolicy::default(),
        }
    }

    /// An adaptive configuration starting from the given parameters.
    pub fn adaptive(mode: Mode, params: CacheParams) -> Self {
        ClampiConfig {
            mode,
            params,
            adaptive: Some(AdaptiveParams::default()),
            invalidate_on_put: false,
            retry: RetryPolicy::default(),
        }
    }

    /// The same configuration with a different retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// One outstanding coalesced nonblocking miss transfer: the merged byte
/// extent `[lo, hi)` of one or more staged miss fetches towards `target`,
/// still in flight on the wire. Later adjacent/overlapping misses widen
/// the span instead of paying a new issue overhead and latency.
#[derive(Debug, Clone, Copy)]
struct NbSpan {
    target: usize,
    lo: u64,
    hi: u64,
}

/// A caching-enabled RMA window.
#[derive(Debug)]
pub struct CachedWindow {
    win: Window,
    cache: Option<RmaCache>,
    controller: Option<AdaptiveController>,
    mode: Mode,
    invalidate_on_put: bool,
    retry: RetryPolicy,
    /// Targets marked as persistently failed: their cached entries are
    /// dropped and their gets served degraded (see `crate::recovery`).
    degraded: Vec<bool>,
    /// Fault counters (retries, timeouts, degraded gets) kept outside the
    /// cache engine so they exist even in [`Mode::Disabled`]; merged into
    /// [`CachedWindow::stats`].
    fault_stats: CacheStats,
    /// The outstanding-miss table's wire view: one span per in-flight
    /// coalesced transfer, drained at every epoch closure.
    nb_spans: Vec<NbSpan>,
    /// Wire ns posted by the nonblocking path per target since the last
    /// completion event towards it (input to the overlap accounting).
    nb_posted_wire: Vec<f64>,
    /// Cached contiguous layout for internal tail/record fetches, so the
    /// hot path does not rebuild a one-block `FlatLayout` per call.
    scratch_layout: FlatLayout,
    /// Reusable packed-payload buffer for [`CachedWindow::get_typed`].
    scratch_buf: Vec<u8>,
    /// Per-target coherence state (drain cursors, scratch) for
    /// [`crate::coherence::CoherenceMode`] passes.
    coherence: CoherenceTracker,
}

/// A one-block contiguous layout (empty for `len == 0`, matching what
/// `Datatype::flatten_n` produces for zero-size types).
fn contig(len: usize) -> FlatLayout {
    if len == 0 {
        FlatLayout::new(Vec::new())
    } else {
        FlatLayout::new(vec![Block { offset: 0, len }])
    }
}

/// The last get's exact snapshot stamp: every get entry point funnels
/// through `Window::try_get_staged`, which samples version and commit
/// timestamp inside the target's region read lock — so the stamp
/// describes the bytes just copied, exactly, at zero virtual-time cost.
fn exact_stamp(win: &Window) -> SnapStamp {
    let s = win.last_get_stamp();
    SnapStamp::exact(s.version, s.ts)
}

/// Request `i`'s slice of a `multi_get` destination buffer (requests are
/// laid out back to back, in order).
fn req_slice<'a>(dst: &'a mut [u8], reqs: &[SnapReq], i: usize) -> &'a mut [u8] {
    let start: usize = reqs[..i].iter().map(|r| r.len).sum();
    &mut dst[start..start + reqs[i].len]
}

/// Why one snapshot validation attempt was abandoned (internal; the
/// public face is [`SnapshotError`] after the bounded whole-batch retry).
#[derive(Debug, Clone, Copy)]
enum SnapAbort {
    /// A notification ring dropped records past a request's stamp, so its
    /// validity interval can no longer be bounded.
    Overflow,
    /// `SnapshotCtx::max_rounds` refetch rounds failed to close the
    /// interval intersection under writer pressure.
    Rounds,
    /// A target faulted mid-batch (the degraded flag tells persistent
    /// from transient at the retry decision).
    Fault(usize),
}

impl CachedWindow {
    /// Collectively creates a window of `size` local bytes with the given
    /// caching configuration (every rank must call).
    pub fn create(p: &mut Process, size: usize, cfg: ClampiConfig) -> Self {
        let win = p.win_allocate(size);
        Self::wrap(win, cfg)
    }

    /// Wraps an existing window with a caching layer.
    pub fn wrap(win: Window, cfg: ClampiConfig) -> Self {
        let cache = (cfg.mode != Mode::Disabled).then(|| RmaCache::new(cfg.params.clone()));
        let controller = match (&cache, cfg.adaptive) {
            (Some(c), Some(ap)) => {
                let mut ctrl = AdaptiveController::new(ap);
                ctrl.note_policy(c.victim_scheme());
                Some(ctrl)
            }
            _ => None,
        };
        let degraded = vec![false; win.ntargets()];
        let nb_posted_wire = vec![0.0; win.ntargets()];
        let coherence = CoherenceTracker::new(win.ntargets());
        CachedWindow {
            win,
            cache,
            controller,
            mode: cfg.mode,
            invalidate_on_put: cfg.invalidate_on_put,
            retry: cfg.retry,
            degraded,
            fault_stats: CacheStats::default(),
            nb_spans: Vec::new(),
            nb_posted_wire,
            scratch_layout: contig(0),
            scratch_buf: Vec::new(),
            coherence,
        }
    }

    /// The configured coherence mode ([`CoherenceMode::None`] when caching
    /// is disabled).
    pub fn coherence_mode(&self) -> CoherenceMode {
        self.cache
            .as_ref()
            .map(|c| c.params().coherence)
            .unwrap_or_default()
    }

    /// Runs one coherence pass over `target` (`None` = every target) and
    /// charges the accumulated management cost. No-op when the mode is
    /// [`CoherenceMode::None`] or caching is disabled.
    fn coherence_pass(&mut self, p: &mut Process, target: Option<usize>) {
        let Some(cache) = self.cache.as_mut() else {
            return;
        };
        if cache.params().coherence == CoherenceMode::None {
            return;
        }
        self.coherence.run_pass(
            p,
            &mut self.win,
            cache,
            &mut self.fault_stats,
            &mut self.degraded,
            &self.retry,
            target,
        );
        let cost = cache.take_cost();
        p.clock_mut().charge_cpu(cost);
    }

    /// Forces a coherence pass over every target — the explicit handle for
    /// applications whose read phases are delimited by barriers rather
    /// than epoch-opening calls (e.g. in-place PageRank updates: after the
    /// post-put barrier, `validate` makes the remote writes of the
    /// finished superstep safe to read through the cache).
    ///
    /// With a coherence mode configured this revalidates/drains per mode;
    /// with [`CoherenceMode::None`] it falls back to a full
    /// [`CachedWindow::invalidate`] (the only safe answer without version
    /// tracking); with caching disabled it is a no-op.
    pub fn validate(&mut self, p: &mut Process) {
        match self.coherence_mode() {
            CoherenceMode::None => {
                if self.cache.is_some() {
                    self.invalidate(p);
                }
            }
            _ => self.coherence_pass(p, None),
        }
    }

    /// The operational mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The wrapped RMA window (e.g. to issue uncached operations).
    pub fn inner(&self) -> &Window {
        &self.win
    }

    /// Mutable access to the wrapped RMA window. Operations issued here
    /// bypass the cache entirely (the paper's dual-window idiom for
    /// per-operation cache bypass).
    pub fn inner_mut(&mut self) -> &mut Window {
        &mut self.win
    }

    /// Cache statistics (zeroed if caching is disabled), merged with the
    /// recovery layer's fault counters (`retries`, `timeouts`,
    /// `degraded_gets`, `invalidations_on_failure`, plus one `Failed`
    /// classification per degraded or abandoned get).
    pub fn stats(&self) -> CacheStats {
        let mut s = self.cache.as_ref().map(|c| *c.stats()).unwrap_or_default();
        s.merge(&self.fault_stats);
        s
    }

    /// The retry policy governing transient-fault recovery.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Whether `target` has been marked persistently failed (all its gets
    /// are now served degraded, without network traffic).
    pub fn is_degraded(&self, target: usize) -> bool {
        self.degraded[target]
    }

    /// Number of gets so far whose payload was zero-filled because of a
    /// fault (degraded target or abandoned fetch). A caller that sees
    /// [`crate::AccessType::Failed`] can snapshot this around the get to
    /// tell a fault apart from the engine's `Failed` *caching*
    /// classification, where the payload arrived fine.
    pub fn faulted_gets(&self) -> u64 {
        self.fault_stats.degraded_gets + self.fault_stats.abandoned_gets
    }

    /// The targets currently marked persistently failed.
    pub fn degraded_targets(&self) -> Vec<usize> {
        (0..self.degraded.len())
            .filter(|&t| self.degraded[t])
            .collect()
    }

    /// Marks `target` persistently failed: drops every cached entry keyed
    /// to it (counted in `invalidations_on_failure`) and routes later
    /// accesses through the degraded path.
    fn mark_degraded(&mut self, p: &mut Process, target: usize) {
        if self.degraded[target] {
            return;
        }
        self.degraded[target] = true;
        if let Some(cache) = self.cache.as_mut() {
            let dropped = cache.invalidate_range(target as u32, 0, u64::MAX);
            self.fault_stats.invalidations_on_failure += dropped as u64;
            let cost = cache.take_cost();
            p.clock_mut().charge_cpu(cost);
        }
    }

    /// Concludes a get whose fetch was abandoned: degrades the target on
    /// persistent failure, delivers a deterministic zero-filled payload,
    /// and classifies the access `Failed` (weak caching: the application
    /// continues; the classification is observable via
    /// [`CachedWindow::stats`] and the returned [`crate::AccessType`]).
    fn fail_get(
        &mut self,
        p: &mut Process,
        dst: &mut [u8],
        target: usize,
        err: RmaError,
    ) -> crate::AccessType {
        if matches!(err, RmaError::TargetFailed { .. }) {
            self.mark_degraded(p, target);
        }
        dst.fill(0);
        self.fault_stats.abandoned_gets += 1;
        self.fault_stats.record(crate::AccessType::Failed);
        crate::AccessType::Failed
    }

    /// The caching engine, if enabled (figure binaries read occupancy,
    /// `ags`, parameters from here).
    pub fn cache(&self) -> Option<&RmaCache> {
        self.cache.as_ref()
    }

    /// Zero-cost peek at `target`'s notification-ring horizon (version,
    /// commit timestamps, evicted-history watermark, global commit
    /// clock). Benches and tests use it to bound snapshot staleness:
    /// a successful [`CachedWindow::multi_get`] timestamp is always ≥
    /// the `dropped_through_ts` watermark observed before the batch.
    pub fn notify_horizon(&self, target: usize) -> clampi_rma::NotifyHorizon {
        self.win.notify_horizon(target)
    }

    /// This rank's exposed region, mutable (initialization).
    pub fn local_mut(&self) -> clampi_rma::MappedWriteGuard<'_> {
        self.win.local_mut()
    }

    /// This rank's exposed region, read-only.
    pub fn local_ref(&self) -> clampi_rma::MappedReadGuard<'_> {
        self.win.local_ref()
    }

    /// The concluded-epoch counter of the underlying window.
    pub fn epoch(&self) -> u64 {
        self.win.epoch()
    }

    /// A cached get (`get_c`): serves from the cache on a hit, otherwise
    /// fetches remotely and tries to install the data.
    ///
    /// Returns the access classification, or `None` when the request
    /// bypassed the cache (disabled mode or zero-size gets). A
    /// [`crate::AccessType::Hit`] means no remote operation was issued — the
    /// caller may skip the flush it would otherwise need before consuming
    /// `dst` (this is exactly where the paper's hit-latency win comes
    /// from).
    pub fn get(
        &mut self,
        p: &mut Process,
        dst: &mut [u8],
        target: usize,
        disp: usize,
        dtype: &Datatype,
        count: usize,
    ) -> Option<crate::AccessType> {
        if dtype.is_contiguous() {
            // Contiguous fast path: reuse the per-window one-block layout
            // instead of flattening (and heap-allocating) per call.
            let len = dtype.size() * count;
            if self.scratch_layout.total_size() != len {
                self.scratch_layout = contig(len);
            }
            let layout = std::mem::replace(&mut self.scratch_layout, contig(0));
            let r = self.get_flat(p, dst, target, disp, &layout);
            self.scratch_layout = layout;
            return r;
        }
        let layout = dtype.flatten_n(count);
        self.get_flat(p, dst, target, disp, &layout)
    }

    /// [`CachedWindow::get`] with a pre-flattened layout.
    ///
    /// Under fault injection this is the recovery entry point: transient
    /// faults are retried per the window's [`RetryPolicy`]; abandoned and
    /// degraded gets return [`crate::AccessType::Failed`] with `dst`
    /// zero-filled instead of panicking (graceful degradation). With
    /// faults disabled the behaviour — including virtual-time charging —
    /// is bit-identical to the pre-fault code path.
    pub fn get_flat(
        &mut self,
        p: &mut Process,
        dst: &mut [u8],
        target: usize,
        disp: usize,
        layout: &FlatLayout,
    ) -> Option<crate::AccessType> {
        if self.degraded[target] {
            // Target already marked dead: serve locally, touch nothing.
            dst.fill(0);
            self.fault_stats.degraded_gets += 1;
            self.fault_stats.record(crate::AccessType::Failed);
            return Some(crate::AccessType::Failed);
        }
        let size = layout.total_size();
        if self.cache.is_none() || size == 0 {
            // Pass-through (disabled mode or zero-size get), still
            // fault-aware: `None` keeps the bypass contract, `Failed`
            // reports an abandoned get.
            let fetched = with_retry(p, &self.retry, &mut self.fault_stats, |p| {
                self.win.try_get_flat(p, dst, target, disp, layout)
            });
            return match fetched {
                Ok(()) => None,
                Err(e) => Some(self.fail_get(p, dst, target, e)),
            };
        }
        let key = GetKey {
            target: target as u32,
            disp: disp as u64,
        };
        let sig = LayoutSig::from_layout(layout);
        // Version stamp for coherence: peeked *before* the payload bytes
        // are read, so the entry can only look older than it is (a get
        // response piggybacks the region version at zero model cost).
        let ver = self.win.version(target);
        // Borrow scope: the engine classification runs with the cache
        // borrowed; abandoned fetches are handled after it is released
        // (an abandoned miss/partial simply never calls `finish_*` — the
        // engine allocates entries only in those calls, so no cleanup is
        // needed).
        let outcome: Result<crate::AccessType, RmaError> = {
            let cache = self.cache.as_mut().expect("checked above"); // xlint: allow(no-unwrap) caching-enabled path: cache checked at entry
            let outcome = match cache.process_lookup(key, &sig, dst) {
                Lookup::Hit => Ok(crate::AccessType::Hit),
                Lookup::PartialHit { cached_len } => {
                    let fetched = if cached_len > 0 {
                        // Contiguous partial hit: fetch only the missing
                        // tail (through the reusable scratch layout — no
                        // per-call allocation).
                        if self.scratch_layout.total_size() != size - cached_len {
                            self.scratch_layout = contig(size - cached_len);
                        }
                        with_retry(p, &self.retry, &mut self.fault_stats, |p| {
                            self.win.try_get_flat(
                                p,
                                &mut dst[cached_len..],
                                target,
                                disp + cached_len,
                                &self.scratch_layout,
                            )
                        })
                    } else {
                        with_retry(p, &self.retry, &mut self.fault_stats, |p| {
                            self.win.try_get_flat(p, dst, target, disp, layout)
                        })
                    };
                    fetched.map(|()| {
                        // The fetch's exact stamp (sampled under the
                        // region read lock, free in virtual time) rides
                        // into the entry for the snapshot layer.
                        cache.stage_stamp(exact_stamp(&self.win));
                        cache.finish_partial(key, sig, dst, ver)
                    })
                }
                Lookup::Miss => with_retry(p, &self.retry, &mut self.fault_stats, |p| {
                    self.win.try_get_flat(p, dst, target, disp, layout)
                })
                .map(|()| {
                    cache.stage_stamp(exact_stamp(&self.win));
                    cache.finish_miss(key, sig, dst, ver)
                }),
            };
            let cost = cache.take_cost();
            p.clock_mut().charge_cpu(cost);
            outcome
        };
        Some(match outcome {
            Ok(class) => class,
            Err(e) => self.fail_get(p, dst, target, e),
        })
    }

    /// Nonblocking batched get (`get_nb`): the entry point of the
    /// outstanding-miss table.
    ///
    /// Classification, destination bytes, and cache-state transitions are
    /// bit-identical to [`CachedWindow::get`] (property-tested, including
    /// under fault injection) — only the virtual-time accounting differs:
    ///
    /// - a **hit** costs what it always did (no wire involved);
    /// - a **miss** stages its fetch eagerly and posts its wire time as an
    ///   outstanding transfer that only completes at the next epoch
    ///   closure (`flush`/`unlock`/`fence`), so consecutive misses'
    ///   network times overlap with each other and with CPU work;
    /// - a miss whose byte range is **adjacent to or overlaps** an
    ///   already-outstanding miss transfer to the same target *coalesces*
    ///   into it — no new issue overhead or latency, only the incremental
    ///   bytes on the wire — as long as the merged extent stays within
    ///   [`CacheParams::max_coalesce_bytes`] (`0` disables coalescing).
    ///
    /// A duplicate miss for the same `GetKey` inside the epoch attaches to
    /// the in-flight request automatically: the engine's `PENDING` entry
    /// turns it into a hit, so no second fetch is issued.
    ///
    /// The caller must *not* consume `dst` for non-`Hit` outcomes until
    /// the next epoch closure — same contract as any nonblocking RMA get.
    pub fn get_nb(
        &mut self,
        p: &mut Process,
        dst: &mut [u8],
        target: usize,
        disp: usize,
        dtype: &Datatype,
        count: usize,
    ) -> Option<crate::AccessType> {
        if dtype.is_contiguous() {
            let len = dtype.size() * count;
            if self.scratch_layout.total_size() != len {
                self.scratch_layout = contig(len);
            }
            let layout = std::mem::replace(&mut self.scratch_layout, contig(0));
            let r = self.get_nb_flat(p, dst, target, disp, &layout);
            self.scratch_layout = layout;
            return r;
        }
        let layout = dtype.flatten_n(count);
        self.get_nb_flat(p, dst, target, disp, &layout)
    }

    /// [`CachedWindow::get_nb`] with a pre-flattened layout.
    pub fn get_nb_flat(
        &mut self,
        p: &mut Process,
        dst: &mut [u8],
        target: usize,
        disp: usize,
        layout: &FlatLayout,
    ) -> Option<crate::AccessType> {
        self.fault_stats.batched_gets += 1;
        if self.degraded[target] {
            dst.fill(0);
            self.fault_stats.degraded_gets += 1;
            self.fault_stats.record(crate::AccessType::Failed);
            return Some(crate::AccessType::Failed);
        }
        let size = layout.total_size();
        if self.cache.is_none() || size == 0 {
            // Pass-through: a plain nonblocking get on the inner window
            // (its request queue drains at the next completion event).
            let fetched = with_retry(p, &self.retry, &mut self.fault_stats, |p| {
                self.win
                    .try_iget_flat(p, dst, target, disp, layout)
                    .map(|_| ())
            });
            return match fetched {
                Ok(()) => None,
                Err(e) => Some(self.fail_get(p, dst, target, e)),
            };
        }
        let key = GetKey {
            target: target as u32,
            disp: disp as u64,
        };
        let sig = LayoutSig::from_layout(layout);
        let mergeable = matches!(sig, LayoutSig::Contig(_));
        // Same pre-read version peek as the blocking path (keeps the two
        // paths' cache states bit-identical).
        let ver = self.win.version(target);
        // Phase 1: classify. Identical engine calls to the blocking path,
        // so classifications and cache state cannot diverge. The engine's
        // CPU cost is left accumulated and charged *after* the match, like
        // the blocking path does — charging it before the wire post would
        // delay every posted completion by the lookup cost and make the
        // nonblocking path slower than blocking.
        let looked_up = {
            let cache = self.cache.as_mut().expect("checked above"); // xlint: allow(no-unwrap) caching-enabled path: cache checked at entry
            cache.process_lookup(key, &sig, dst)
        };
        let outcome: Result<crate::AccessType, RmaError> = match looked_up {
            Lookup::Hit => Ok(crate::AccessType::Hit),
            Lookup::Miss => with_retry(p, &self.retry, &mut self.fault_stats, |p| {
                self.win.try_get_staged(p, dst, target, disp, layout)
            })
            .map(|staged| {
                self.account_nb_fetch(
                    p,
                    target,
                    disp as u64,
                    (disp + size) as u64,
                    staged,
                    mergeable,
                );
                let stamp = exact_stamp(&self.win);
                let cache = self.cache.as_mut().expect("checked above"); // xlint: allow(no-unwrap) caching-enabled path: cache checked at entry
                cache.stage_stamp(stamp);
                cache.finish_miss(key, sig, dst, ver)
            }),
            Lookup::PartialHit { cached_len } => {
                let staged = if cached_len > 0 {
                    if self.scratch_layout.total_size() != size - cached_len {
                        self.scratch_layout = contig(size - cached_len);
                    }
                    with_retry(p, &self.retry, &mut self.fault_stats, |p| {
                        self.win.try_get_staged(
                            p,
                            &mut dst[cached_len..],
                            target,
                            disp + cached_len,
                            &self.scratch_layout,
                        )
                    })
                } else {
                    with_retry(p, &self.retry, &mut self.fault_stats, |p| {
                        self.win.try_get_staged(p, dst, target, disp, layout)
                    })
                };
                staged.map(|st| {
                    self.account_nb_fetch(
                        p,
                        target,
                        (disp + cached_len) as u64,
                        (disp + size) as u64,
                        st,
                        mergeable,
                    );
                    let stamp = exact_stamp(&self.win);
                    let cache = self.cache.as_mut().expect("checked above"); // xlint: allow(no-unwrap) caching-enabled path: cache checked at entry
                    cache.stage_stamp(stamp);
                    cache.finish_partial(key, sig, dst, ver)
                })
            }
        };
        let cost = self.cache.as_mut().expect("checked above").take_cost(); // xlint: allow(no-unwrap) caching-enabled path: cache checked at entry
        p.clock_mut().charge_cpu(cost);
        Some(match outcome {
            Ok(class) => class,
            Err(e) => self.fail_get(p, dst, target, e),
        })
    }

    /// Accounts the virtual-time cost of one staged nonblocking miss fetch
    /// of bytes `[lo, hi)` at `target`: merges into an outstanding span
    /// when adjacent/overlapping and within the coalescing bound (posting
    /// only the incremental bytes' wire time — no new issue overhead, no
    /// new latency), otherwise charges the issue overhead and posts the
    /// transfer's full wire time as outstanding.
    fn account_nb_fetch(
        &mut self,
        p: &mut Process,
        target: usize,
        lo: u64,
        hi: u64,
        staged: StagedGet,
        mergeable: bool,
    ) {
        let max_coalesce = self
            .cache
            .as_ref()
            .map_or(0, |c| c.params().max_coalesce_bytes) as u64;
        if mergeable && max_coalesce > 0 {
            let my_rank = self.win.my_rank();
            for s in &mut self.nb_spans {
                // Merge candidates: same target, ranges overlapping or
                // touching, merged extent within the bound.
                if s.target != target || lo > s.hi || s.lo > hi {
                    continue;
                }
                let (mlo, mhi) = (s.lo.min(lo), s.hi.max(hi));
                if mhi - mlo > max_coalesce {
                    continue;
                }
                let old_wire = p
                    .netmodel()
                    .transfer_cost(my_rank, target, (s.hi - s.lo) as usize, 1)
                    .wire_ns;
                let new_wire = p
                    .netmodel()
                    .transfer_cost(my_rank, target, (mhi - mlo) as usize, 1)
                    .wire_ns;
                let inc = (new_wire - old_wire).max(0.0) * staged.spike;
                if inc > 0.0 {
                    p.clock_mut().post_network(target, inc);
                    self.nb_posted_wire[target] += inc;
                }
                s.lo = mlo;
                s.hi = mhi;
                self.fault_stats.coalesced_misses += 1;
                return;
            }
            self.nb_spans.push(NbSpan { target, lo, hi });
        }
        p.clock_mut().charge_cpu(staged.cost.cpu_ns);
        let wire = staged.cost.wire_ns * staged.spike;
        if wire > 0.0 {
            p.clock_mut().post_network(target, wire);
            self.nb_posted_wire[target] += wire;
        }
    }

    /// [`CachedWindow::get`] with a *typed origin*: the payload — served
    /// from cache or fetched — is scattered into `dst` according to
    /// `origin_dtype` (MPI_Get with distinct origin/target datatypes).
    /// Caching still keys on the target-side `(target, disp)` and layout.
    ///
    /// # Panics
    ///
    /// Panics if the origin and target payload sizes differ.
    #[allow(clippy::too_many_arguments)]
    pub fn get_typed(
        &mut self,
        p: &mut Process,
        dst: &mut [u8],
        origin_dtype: &Datatype,
        origin_count: usize,
        target: usize,
        disp: usize,
        target_dtype: &Datatype,
        target_count: usize,
    ) -> Option<crate::AccessType> {
        let origin = origin_dtype.flatten_n(origin_count);
        let tlayout = target_dtype.flatten_n(target_count);
        assert_eq!(
            origin.total_size(),
            tlayout.total_size(),
            "origin and target payload sizes differ"
        );
        self.scratch_buf.clear();
        self.scratch_buf.resize(tlayout.total_size(), 0);
        let mut packed = std::mem::take(&mut self.scratch_buf);
        let class = self.get_flat(p, &mut packed, target, disp, &tlayout);
        clampi_datatype::unpack(&packed, &origin, dst);
        self.scratch_buf = packed;
        // The origin-side scatter is initiator CPU work.
        if let Some(cache) = self.cache.as_ref() {
            let cost = cache.params().costs.memcpy_cost(origin.total_size());
            p.clock_mut().charge_cpu(cost);
        }
        class
    }

    /// An *uncached* get: always goes to the network, leaving the cache
    /// untouched. This is the per-operation bypass the paper proposes as
    /// an MPI-standard extension (Sec. III-A) — without it, users must
    /// create two windows over the same memory and enable caching on only
    /// one of them.
    pub fn get_uncached(
        &mut self,
        p: &mut Process,
        dst: &mut [u8],
        target: usize,
        disp: usize,
        dtype: &Datatype,
        count: usize,
    ) {
        self.win.get(p, dst, target, disp, dtype, count);
    }

    /// An uncached put (writes invalidate nothing by themselves — MPI's
    /// epoch rules forbid conflicting put/get in one epoch, and the mode
    /// determines when cached data expires).
    ///
    /// Under fault injection, transient faults are retried like gets.
    /// A put towards a target marked persistently failed — or one whose
    /// retries are exhausted on a dead target — is *discarded* (the data
    /// has nowhere to go); transient exhaustion also discards the put and
    /// counts a timeout when the budget ran out. Check
    /// [`CachedWindow::is_degraded`] when write delivery must be
    /// confirmed.
    pub fn put(
        &mut self,
        p: &mut Process,
        src: &[u8],
        target: usize,
        disp: usize,
        dtype: &Datatype,
        count: usize,
    ) {
        if self.degraded[target] {
            return;
        }
        if self.invalidate_on_put {
            if let Some(cache) = self.cache.as_mut() {
                let span = dtype.flatten_n(count).span();
                cache.invalidate_range(target as u32, disp as u64, (disp + span) as u64);
                let cost = cache.take_cost();
                p.clock_mut().charge_cpu(cost);
            }
        }
        let sent = with_retry(p, &self.retry, &mut self.fault_stats, |p| {
            self.win.try_put(p, src, target, disp, dtype, count)
        });
        if let Err(RmaError::TargetFailed { .. }) = sent {
            self.mark_degraded(p, target);
        }
    }

    /// A snapshot-consistent batched read (see [`crate::snapshot`]): fills
    /// `dst` with every request's bytes such that the whole batch reflects
    /// one commit timestamp of the window's history — possibly slightly
    /// stale, never a torn mix of old and new data.
    ///
    /// The first attempt gathers through the cached nonblocking path
    /// (hits stay hits, misses coalesce); validation then drains the
    /// involved targets' notification rings, intersects the requests'
    /// validity intervals, and refetches — uncached — only the requests
    /// whose interval excludes the candidate timestamp. Ring overflow or
    /// exhausted refetch rounds abort the attempt; retry attempts bypass
    /// the cache entirely so a stale resident entry cannot livelock the
    /// batch. Unlike [`CachedWindow::get`], a faulted target is reported
    /// as [`SnapshotError::TargetFaulted`] instead of zero-filling —
    /// fabricated zeros can never be part of a consistent snapshot.
    ///
    /// `dst.len()` must equal the sum of the request lengths; request `i`
    /// lands at the concatenation offset of the lengths before it.
    ///
    /// Works in every [`Mode`] including [`Mode::Disabled`] (all reads
    /// direct). The cache is left exactly as the gather's ordinary
    /// `get_nb` calls leave it — the snapshot's internal flushes run *no*
    /// epoch hook and *no* coherence pass, so a transparent-mode
    /// invalidation cannot fire mid-batch. Runs that never call this are
    /// bit-identical — including virtual time — to builds without the
    /// snapshot subsystem.
    pub fn multi_get(
        &mut self,
        p: &mut Process,
        ctx: &mut SnapshotCtx,
        reqs: &[SnapReq],
        dst: &mut [u8],
    ) -> Result<SnapshotInfo, SnapshotError> {
        let total: usize = reqs.iter().map(|r| r.len).sum();
        assert_eq!(
            dst.len(),
            total,
            "multi_get: dst length {} != batch total {total}",
            dst.len()
        );
        self.fault_stats.snapshot_gets += reqs.len() as u64;
        if reqs.is_empty() {
            return Ok(SnapshotInfo::default());
        }
        ctx.targets.clear();
        ctx.targets
            .extend(reqs.iter().filter(|r| r.len > 0).map(|r| r.target));
        ctx.targets.sort_unstable();
        ctx.targets.dedup();

        let mut aborts = 0u64;
        let mut refetched = 0u64;
        let mut fault: Option<usize> = None;
        let mut outcome: Result<SnapshotInfo, SnapshotError> = Err(SnapshotError::RetriesExhausted);
        for attempt in 0..ctx.max_attempts.max(1) {
            match self.snapshot_attempt(p, ctx, reqs, dst, attempt > 0, &mut refetched) {
                Ok(mut info) => {
                    info.aborts = aborts;
                    info.refetched = refetched;
                    outcome = Ok(info);
                    break;
                }
                Err(SnapAbort::Fault(t)) => {
                    aborts += 1;
                    fault = Some(t);
                    if self.degraded[t] {
                        break; // persistent failure: retrying cannot help
                    }
                }
                Err(SnapAbort::Overflow | SnapAbort::Rounds) => {
                    aborts += 1;
                    fault = None;
                }
            }
        }
        if outcome.is_err() {
            if let Some(t) = fault {
                outcome = Err(SnapshotError::TargetFaulted { target: t as u32 });
            }
        }
        self.fault_stats.snapshot_aborts += aborts;
        self.fault_stats.snapshot_refetches += refetched;
        if let Ok(info) = &outcome {
            self.fault_stats.snapshot_staleness_ns += info.staleness_ns;
        }
        outcome
    }

    /// Clears `ctx`'s staged transaction (the lazy face of
    /// [`CachedWindow::multi_get`]).
    pub fn tx_begin(&mut self, ctx: &mut SnapshotCtx) {
        ctx.begin();
    }

    /// Stages one read in the transaction: no bytes move until
    /// [`CachedWindow::tx_commit`]. Returns the range of
    /// [`SnapshotCtx::bytes`] the payload will occupy after the commit.
    pub fn tx_get(
        &mut self,
        ctx: &mut SnapshotCtx,
        target: usize,
        disp: usize,
        len: usize,
    ) -> std::ops::Range<usize> {
        ctx.stage(target as u32, disp, len)
    }

    /// Executes every read staged since [`CachedWindow::tx_begin`] as one
    /// snapshot batch; on success [`SnapshotCtx::bytes`] holds the
    /// payloads at the ranges `tx_get` returned.
    pub fn tx_commit(
        &mut self,
        p: &mut Process,
        ctx: &mut SnapshotCtx,
    ) -> Result<SnapshotInfo, SnapshotError> {
        let reqs = std::mem::take(&mut ctx.reqs);
        let mut buf = std::mem::take(&mut ctx.buf);
        let r = self.multi_get(p, ctx, &reqs, &mut buf);
        ctx.reqs = reqs;
        ctx.buf = buf;
        r
    }

    /// One gather + validate pass over the whole batch. `direct` (retry
    /// attempts) bypasses the cache so stale residents cannot re-abort.
    fn snapshot_attempt(
        &mut self,
        p: &mut Process,
        ctx: &mut SnapshotCtx,
        reqs: &[SnapReq],
        dst: &mut [u8],
        direct: bool,
        refetched: &mut u64,
    ) -> Result<SnapshotInfo, SnapAbort> {
        // --- Gather: one (possibly cached) read per request, with the
        // stamp of the bytes that actually landed in `dst`. Stamps are
        // read immediately after each get — a later get in the batch may
        // evict the entry a hit was served from.
        ctx.bounds.clear();
        ctx.bounds.resize(reqs.len(), ReqBound::default());
        ctx.refetch.clear();
        let mut off = 0usize;
        for (i, r) in reqs.iter().enumerate() {
            let slice = &mut dst[off..off + r.len];
            off += r.len;
            if r.len == 0 {
                continue; // neutral: lo 0, hi ∞
            }
            let target = r.target as usize;
            if self.degraded[target] {
                return Err(SnapAbort::Fault(target));
            }
            if direct || self.cache.is_none() {
                let stamp = self
                    .snap_fetch(p, slice, target, r.disp)
                    .map_err(|e| self.snap_fault(p, target, e))?;
                ctx.bounds[i] = ReqBound {
                    stamp,
                    hi: u64::MAX,
                };
                continue;
            }
            let partial0 = self.cache.as_ref().map_or(0, |c| c.stats().partial_hits);
            let faulted0 = self.faulted_gets();
            let class = self.get_nb_flat_contig(p, slice, target, r.disp);
            if self.faulted_gets() > faulted0 {
                // The slice was zero-filled by the fault path — never
                // snapshot material (cf. AccessType::Failed vs
                // faulted_gets disambiguation).
                return Err(SnapAbort::Fault(target));
            }
            let partial = self.cache.as_ref().map_or(0, |c| c.stats().partial_hits) > partial0;
            let stamp = if partial {
                // Partial hit: `slice` mixes a cached head with a fresh
                // tail — no single stamp describes it. Refetch.
                SnapStamp::default()
            } else if class == Some(crate::AccessType::Hit) {
                // Served from a resident entry: use its stamp (inexact
                // ones — entries from stamp-blind insert paths — refetch).
                let key = GetKey {
                    target: r.target,
                    disp: r.disp as u64,
                };
                self.cache
                    .as_ref()
                    .and_then(|c| c.snap_stamp(&key))
                    .unwrap_or_default()
            } else {
                // Fetched over the network this call (miss — cached or
                // not — or pass-through): the window's last-get stamp is
                // exact for these bytes.
                exact_stamp(&self.win)
            };
            if stamp.exact {
                ctx.bounds[i] = ReqBound {
                    stamp,
                    hi: u64::MAX,
                };
            } else {
                ctx.refetch.push(i);
            }
        }
        // Complete the gathered fetches. Deliberately *not*
        // `CachedWindow::flush`: no epoch hook (transparent mode would
        // invalidate the entries being validated) and no coherence pass.
        for k in 0..ctx.targets.len() {
            let t = ctx.targets[k] as usize;
            self.snap_flush(p, t);
        }

        // --- Validate: bound every interval from the notification rings,
        // pick a timestamp, refetch what excludes it; bounded rounds.
        let mut rounds = 0usize;
        loop {
            if !ctx.refetch.is_empty() {
                let todo = std::mem::take(&mut ctx.refetch);
                for &i in &todo {
                    let r = reqs[i];
                    let stamp = self
                        .snap_fetch(p, req_slice(dst, reqs, i), r.target as usize, r.disp)
                        .map_err(|e| self.snap_fault(p, r.target as usize, e))?;
                    ctx.bounds[i] = ReqBound {
                        stamp,
                        hi: u64::MAX,
                    };
                    *refetched += 1;
                }
                for k in 0..ctx.targets.len() {
                    let t = ctx.targets[k];
                    if todo.iter().any(|&i| reqs[i].target == t) {
                        self.snap_flush(p, t as usize);
                    }
                }
                ctx.refetch = todo;
                ctx.refetch.clear();
            }

            let mut cap = u64::MAX;
            let mut now_max = 0u64;
            for k in 0..ctx.targets.len() {
                let t = ctx.targets[k] as usize;
                // Drain from the oldest stamp among this target's
                // requests: every record a stamped payload could have
                // missed must be visible, or the interval is unbounded.
                let cursor = (0..reqs.len())
                    .filter(|&i| reqs[i].target as usize == t && reqs[i].len > 0)
                    .map(|i| ctx.bounds[i].stamp.version)
                    .min()
                    .unwrap_or(u64::MAX);
                if cursor == u64::MAX {
                    continue;
                }
                let drained = with_retry(p, &self.retry, &mut self.fault_stats, |p| {
                    ctx.records.clear();
                    self.win
                        .try_drain_notifications(p, t, cursor, &mut ctx.records)
                })
                .map_err(|e| self.snap_fault(p, t, e))?;
                if drained.overflowed {
                    return Err(SnapAbort::Overflow);
                }
                cap = cap.min(drained.now_ts);
                now_max = now_max.max(drained.now_ts);
                for rec in &ctx.records {
                    let (rlo, rhi) = (rec.disp as usize, (rec.disp + rec.len) as usize);
                    for (i, r) in reqs.iter().enumerate() {
                        if r.target as usize != t
                            || r.len == 0
                            || rec.version <= ctx.bounds[i].stamp.version
                        {
                            continue;
                        }
                        if rlo < r.disp + r.len && r.disp < rhi {
                            // First overlapping write after the stamp
                            // closes the request's validity interval.
                            ctx.bounds[i].hi = ctx.bounds[i].hi.min(rec.ts);
                        }
                    }
                }
            }
            if cap == u64::MAX {
                // Nothing drained (all-zero-length batch): trivially
                // consistent at the zero epoch.
                cap = 0;
            }
            match choose_timestamp(&ctx.bounds, cap) {
                Ok(timestamp) => {
                    return Ok(SnapshotInfo {
                        timestamp,
                        refetched: 0, // totals filled in by multi_get
                        aborts: 0,
                        staleness_ns: now_max.saturating_sub(timestamp),
                    });
                }
                Err(lo) => {
                    rounds += 1;
                    if rounds >= self.snap_max_rounds(ctx) {
                        return Err(SnapAbort::Rounds);
                    }
                    for (i, r) in reqs.iter().enumerate() {
                        if r.len > 0 && ctx.bounds[i].hi <= lo {
                            ctx.refetch.push(i);
                        }
                    }
                    debug_assert!(
                        !ctx.refetch.is_empty(),
                        "empty intersection must name a stale request"
                    );
                }
            }
        }
    }

    fn snap_max_rounds(&self, ctx: &SnapshotCtx) -> usize {
        ctx.max_rounds.max(1)
    }

    /// One direct (cache-bypassing) snapshot fetch through the
    /// nonblocking/coalescing accounting, returning the bytes' exact
    /// stamp.
    fn snap_fetch(
        &mut self,
        p: &mut Process,
        dst: &mut [u8],
        target: usize,
        disp: usize,
    ) -> Result<SnapStamp, RmaError> {
        let len = dst.len();
        if self.scratch_layout.total_size() != len {
            self.scratch_layout = contig(len);
        }
        let layout = std::mem::replace(&mut self.scratch_layout, contig(0));
        let staged = with_retry(p, &self.retry, &mut self.fault_stats, |p| {
            self.win.try_get_staged(p, dst, target, disp, &layout)
        });
        self.scratch_layout = layout;
        staged.map(|st| {
            self.account_nb_fetch(p, target, disp as u64, (disp + len) as u64, st, true);
            exact_stamp(&self.win)
        })
    }

    /// [`CachedWindow::get_nb_flat`] over a contiguous `dst.len()`-byte
    /// span, reusing the per-window scratch layout.
    fn get_nb_flat_contig(
        &mut self,
        p: &mut Process,
        dst: &mut [u8],
        target: usize,
        disp: usize,
    ) -> Option<crate::AccessType> {
        let len = dst.len();
        if self.scratch_layout.total_size() != len {
            self.scratch_layout = contig(len);
        }
        let layout = std::mem::replace(&mut self.scratch_layout, contig(0));
        let r = self.get_nb_flat(p, dst, target, disp, &layout);
        self.scratch_layout = layout;
        r
    }

    /// Completion barrier for the snapshot's own fetches: the wire/overlap
    /// accounting of [`CachedWindow::flush`] without the epoch hook or a
    /// coherence pass (both would mutate the cache mid-snapshot).
    fn snap_flush(&mut self, p: &mut Process, target: usize) {
        let posted = self.nb_take_posted(Some(target));
        let blocked0 = p.clock().total_blocked();
        self.win.flush(p, target);
        self.nb_credit_overlap(posted, p.clock().total_blocked() - blocked0);
    }

    /// Books a snapshot-fetch fault: persistent target failures degrade
    /// the target (dropping its cached entries) exactly like
    /// [`CachedWindow::get`]'s fault path — but no zero-fill, the batch
    /// aborts instead.
    fn snap_fault(&mut self, p: &mut Process, target: usize, e: RmaError) -> SnapAbort {
        if matches!(e, RmaError::TargetFailed { .. }) {
            self.mark_degraded(p, target);
        }
        SnapAbort::Fault(target)
    }

    fn on_epoch_close(&mut self, p: &mut Process) {
        let Some(cache) = self.cache.as_mut() else {
            return;
        };
        cache.epoch_close();
        if self.mode == Mode::Transparent {
            cache.invalidate();
        }
        if let Some(ctrl) = self.controller.as_mut() {
            let params = cache.params();
            let free_fraction = if params.storage_bytes == 0 {
                0.0
            } else {
                cache.free_bytes() as f64 / params.storage_bytes as f64
            };
            if let Some(adj) = ctrl.maybe_adjust(
                cache.stats(),
                params.index_entries,
                params.storage_bytes,
                free_fraction,
            ) {
                match adj.policy {
                    // A switch keeps residents; only the scoring rule flips.
                    Some(policy) => {
                        cache.set_victim_scheme(policy);
                        ctrl.note_policy(policy);
                    }
                    None => cache.resize(adj.index_entries, adj.storage_bytes),
                }
            }
        }
        let cost = cache.take_cost();
        p.clock_mut().charge_cpu(cost);
    }

    /// Explicit cache invalidation (`CLAMPI_Invalidate`), for the
    /// user-defined mode.
    pub fn invalidate(&mut self, p: &mut Process) {
        if let Some(cache) = self.cache.as_mut() {
            cache.invalidate();
            let cost = cache.take_cost();
            p.clock_mut().charge_cpu(cost);
        }
    }

    /// Drains the nonblocking-miss wire accounting ahead of a completion
    /// event towards `target` (`None` = all targets): clears the affected
    /// spans and returns their posted wire ns.
    fn nb_take_posted(&mut self, target: Option<usize>) -> f64 {
        match target {
            Some(t) => {
                self.nb_spans.retain(|s| s.target != t);
                std::mem::take(&mut self.nb_posted_wire[t])
            }
            None => {
                self.nb_spans.clear();
                self.nb_posted_wire.iter_mut().map(std::mem::take).sum()
            }
        }
    }

    /// Credits `overlapped_wire_ns`: of the `posted` nonblocking wire ns
    /// drained by a completion event, the part the initiator did not have
    /// to block for was hidden behind CPU work. `blocked_delta` also
    /// covers waits for blocking-path transfers completed by the same
    /// event, so the credit is a (slightly conservative) approximation.
    fn nb_credit_overlap(&mut self, posted: f64, blocked_delta: f64) {
        if posted > 0.0 {
            self.fault_stats.overlapped_wire_ns += (posted - blocked_delta).max(0.0) as u64;
        }
    }

    /// MPI_Win_flush + cache epoch hook (plus a coherence pass over
    /// `target` — a flush is where the target's newly-visible remote
    /// writes must stop being served from cache).
    pub fn flush(&mut self, p: &mut Process, target: usize) {
        let posted = self.nb_take_posted(Some(target));
        let blocked0 = p.clock().total_blocked();
        self.win.flush(p, target);
        self.nb_credit_overlap(posted, p.clock().total_blocked() - blocked0);
        self.on_epoch_close(p);
        self.coherence_pass(p, Some(target));
    }

    /// MPI_Win_flush_all + cache epoch hook + coherence pass over every
    /// target.
    pub fn flush_all(&mut self, p: &mut Process) {
        let posted = self.nb_take_posted(None);
        let blocked0 = p.clock().total_blocked();
        self.win.flush_all(p);
        self.nb_credit_overlap(posted, p.clock().total_blocked() - blocked0);
        self.on_epoch_close(p);
        self.coherence_pass(p, None);
    }

    /// MPI_Win_lock (plus a coherence pass over `target`: the new access
    /// epoch makes remote writes visible).
    pub fn lock(&mut self, p: &mut Process, kind: LockKind, target: usize) {
        self.win.lock(p, kind, target);
        self.coherence_pass(p, Some(target));
    }

    /// MPI_Win_unlock + cache epoch hook.
    pub fn unlock(&mut self, p: &mut Process, target: usize) {
        let posted = self.nb_take_posted(Some(target));
        let blocked0 = p.clock().total_blocked();
        self.win.unlock(p, target);
        self.nb_credit_overlap(posted, p.clock().total_blocked() - blocked0);
        self.on_epoch_close(p);
    }

    /// MPI_Win_lock_all (plus a coherence pass over every target).
    pub fn lock_all(&mut self, p: &mut Process) {
        self.win.lock_all(p);
        self.coherence_pass(p, None);
    }

    /// MPI_Win_unlock_all + cache epoch hook.
    pub fn unlock_all(&mut self, p: &mut Process) {
        let posted = self.nb_take_posted(None);
        let blocked0 = p.clock().total_blocked();
        self.win.unlock_all(p);
        self.nb_credit_overlap(posted, p.clock().total_blocked() - blocked0);
        self.on_epoch_close(p);
    }

    /// MPI_Win_fence + cache epoch hook + coherence pass (a fence both
    /// closes the old epoch and opens a new one, so the pass runs after
    /// the hook).
    pub fn fence(&mut self, p: &mut Process) {
        let posted = self.nb_take_posted(None);
        let blocked0 = p.clock().total_blocked();
        self.win.fence(p);
        self.nb_credit_overlap(posted, p.clock().total_blocked() - blocked0);
        self.on_epoch_close(p);
        self.coherence_pass(p, None);
    }

    /// MPI_Win_post (PSCW exposure).
    pub fn post(&mut self, p: &mut Process, accessors: &[usize]) {
        self.win.post(p, accessors);
    }

    /// MPI_Win_start (PSCW access epoch, plus a coherence pass over the
    /// named targets).
    pub fn start(&mut self, p: &mut Process, targets: &[usize]) {
        self.win.start(p, targets);
        for &t in targets {
            self.coherence_pass(p, Some(t));
        }
    }

    /// MPI_Win_complete + cache epoch hook (the PSCW epoch closure the
    /// paper's epoch model keys on).
    pub fn complete(&mut self, p: &mut Process) {
        let posted = self.nb_take_posted(None);
        let blocked0 = p.clock().total_blocked();
        self.win.complete(p);
        self.nb_credit_overlap(posted, p.clock().total_blocked() - blocked0);
        self.on_epoch_close(p);
    }

    /// MPI_Win_wait + cache epoch hook.
    pub fn wait(&mut self, p: &mut Process, accessors: &[usize]) {
        let posted = self.nb_take_posted(None);
        let blocked0 = p.clock().total_blocked();
        self.win.wait(p, accessors);
        self.nb_credit_overlap(posted, p.clock().total_blocked() - blocked0);
        self.on_epoch_close(p);
    }
}
