//! Cache statistics: the counters behind the paper's Figs. 11, 13, 16, 18.
//!
//! Every `get_c` processed by the caching layer is classified into exactly
//! one access type (the paper's Sec. III-B):
//!
//! - **hit** — the lookup returned a `CACHED` or `PENDING` entry covering
//!   the request (no network);
//! - **direct** — a miss that was cached without any eviction;
//! - **conflicting** — a miss whose Cuckoo insertion failed, evicting an
//!   entry on the insertion path;
//! - **capacity** — a miss that required a storage eviction which freed
//!   enough space;
//! - **failed** — a miss that could not be cached (the get itself still
//!   succeeds: weak caching).

use crate::eviction::{VictimScheme, POLICY_COUNT};

/// The classification of one processed `get_c`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessType {
    /// Served from cache (full hit on a CACHED or PENDING entry).
    Hit,
    /// Cached with no eviction.
    Direct,
    /// Cached after an index (Cuckoo insertion path) eviction.
    Conflicting,
    /// Cached after a storage eviction freed enough space.
    Capacity,
    /// Not cached: no resources even after one eviction attempt.
    ///
    /// **Overloaded under fault injection.** The recovery layer *also*
    /// classifies degraded and abandoned gets as `Failed`, and those
    /// deliver a zero-filled payload — whereas the engine's
    /// could-not-cache `Failed` still delivers the fetched bytes (weak
    /// caching). The classification alone cannot tell the two apart:
    /// snapshot `CachedWindow::faulted_gets()` around the operation —
    /// it moves exactly when the payload was zero-filled by a fault.
    Failed,
}

impl AccessType {
    /// Stable label used by the figure binaries.
    pub fn label(&self) -> &'static str {
        match self {
            AccessType::Hit => "hit",
            AccessType::Direct => "direct",
            AccessType::Conflicting => "conflicting",
            AccessType::Capacity => "capacity",
            AccessType::Failed => "failed",
        }
    }

    /// All access types in reporting order.
    pub const ALL: [AccessType; 5] = [
        AccessType::Hit,
        AccessType::Direct,
        AccessType::Conflicting,
        AccessType::Capacity,
        AccessType::Failed,
    ];
}

/// Aggregated counters for one caching layer `C_w`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheStats {
    /// Total `get_c` operations processed.
    pub total_gets: u64,
    /// Full hits (includes hits on PENDING entries).
    pub hits: u64,
    /// Partial hits: key matched but the request exceeded the cached size;
    /// these are *also* counted in direct/conflicting/capacity/failed
    /// according to how the extension allocation went.
    pub partial_hits: u64,
    /// Misses cached without eviction.
    pub direct: u64,
    /// Misses that evicted along the Cuckoo insertion path.
    pub conflicting: u64,
    /// Misses that evicted for space and then fit.
    pub capacity: u64,
    /// Misses that could not be cached.
    pub failed: u64,
    /// Storage (capacity) eviction procedures executed.
    pub evictions: u64,
    /// Index slots visited across all capacity evictions (`v_i` summed).
    pub visited_slots: u64,
    /// Non-empty slots among the visited ones (numerator of the paper's
    /// sparsity signal `q`).
    pub visited_nonempty: u64,
    /// Cache invalidations (epoch closures in transparent mode, explicit
    /// invalidates, and adaptive adjustments).
    pub invalidations: u64,
    /// Adaptive parameter adjustments performed.
    pub adjustments: u64,
    /// Payload bytes served from cache.
    pub bytes_from_cache: u64,
    /// Payload bytes fetched over the network by `get_c` calls.
    pub bytes_from_network: u64,
    /// Transient-fault retries issued by the recovery layer (one per
    /// reissued network operation, not per get).
    pub retries: u64,
    /// Operations abandoned because their cumulative virtual-time budget
    /// ([`crate::RetryPolicy::op_timeout_ns`]) ran out while retrying.
    pub timeouts: u64,
    /// Gets served in degraded mode (target already marked failed: no
    /// network traffic, zero-filled payload, classified `Failed`).
    pub degraded_gets: u64,
    /// Gets whose fetch was abandoned by the recovery layer (rank death
    /// or retries exhausted): zero-filled payload, classified `Failed`.
    /// Together with `degraded_gets` this disambiguates a fault-failed
    /// get from the engine's `Failed` *caching* classification, where
    /// the payload was fetched fine but could not be cached.
    pub abandoned_gets: u64,
    /// Cache entries dropped because their target rank was marked failed.
    pub invalidations_on_failure: u64,
    /// Misses whose wire transfer was merged into an already-outstanding
    /// nonblocking get to the same target (adjacent/overlapping byte
    /// range, within `CacheParams::max_coalesce_bytes`): no new issue
    /// overhead and only the incremental bytes on the wire.
    pub coalesced_misses: u64,
    /// Gets issued through the nonblocking batched path
    /// ([`crate::CachedWindow::get_nb`] and friends).
    pub batched_gets: u64,
    /// Wire nanoseconds of nonblocking miss transfers that were hidden
    /// behind CPU work instead of being blocked on at the epoch closure
    /// (posted wire time minus time actually spent blocked, saturating).
    /// Approximate: rounded to whole ns and attributed per closure.
    pub overlapped_wire_ns: u64,
    /// Cache entries dropped by a coherence pass because a remote put
    /// made (or may have made) them stale — each one a stale hit that can
    /// no longer happen.
    pub stale_hits_prevented: u64,
    /// Put-notification records consumed by `EagerInvalidate` drains.
    pub notifications_drained: u64,
    /// Notification-ring overflows observed (each falls back to a full
    /// per-target invalidation).
    pub notification_overflows: u64,
    /// Remote version fetches issued by `EpochValidate` passes.
    pub version_fetches: u64,
    /// Optimistic (seqlock) hit-path reads discarded because the shard's
    /// sequence counter changed mid-copy; each one retried or fell back to
    /// the locked path ([`crate::ShardedCache`]).
    pub opt_retries: u64,
    /// Hit-path reads served under the shard read lock instead of the
    /// optimistic path (fallback after repeated validation failures or a
    /// mid-mutation probe).
    pub locked_reads: u64,
    /// Live victim-policy switches applied (adaptive [`SwitchPolicy`]
    /// adjustments plus explicit `set_victim_scheme` calls that changed
    /// the policy).
    ///
    /// [`SwitchPolicy`]: crate::AdjustRule::SwitchPolicy
    pub policy_switches: u64,
    /// Victims evicted by the live [`VictimScheme::Lease`] policy whose
    /// lease had already expired under the get-sequence clock (the
    /// remainder were reclaimed early, before expiry).
    ///
    /// [`VictimScheme::Lease`]: crate::VictimScheme::Lease
    pub lease_expiries: u64,
    /// Gets replayed through the policy lab's shadow caches (one per
    /// get, regardless of how many shadows run).
    pub shadow_gets: u64,
    /// Shadow-cache slot inspections across all policies — the lab's
    /// overhead unit, priced by
    /// [`CacheCostModel::shadow_visit_ns`](crate::CacheCostModel::shadow_visit_ns)
    /// but never charged to the live virtual clock.
    pub shadow_slot_visits: u64,
    /// Per-policy shadow hits, indexed by
    /// [`VictimScheme::index`](crate::VictimScheme::index) (the order of
    /// [`VictimScheme::ALL`](crate::VictimScheme::ALL)).
    pub shadow_hits: [u64; POLICY_COUNT],
    /// Requests read through the snapshot subsystem
    /// ([`crate::CachedWindow::multi_get`]) — one per request in a batch,
    /// successful or not.
    pub snapshot_gets: u64,
    /// Snapshot requests refetched during validation because their
    /// validity interval excluded the candidate timestamp (beyond the
    /// initial gather; each refetch is an uncached network read).
    pub snapshot_refetches: u64,
    /// Snapshot validation attempts aborted (notification-ring overflow,
    /// refetch rounds exhausted, or a mid-batch fault) and retried — or
    /// given up on — as a whole batch.
    pub snapshot_aborts: u64,
    /// Total staleness of successful snapshots in virtual nanoseconds:
    /// for each batch, the drain-time commit clock minus the chosen
    /// timestamp (0 = the batch was provably the newest state).
    pub snapshot_staleness_ns: u64,
}

impl CacheStats {
    /// Records one classified access.
    pub fn record(&mut self, t: AccessType) {
        self.total_gets += 1;
        match t {
            AccessType::Hit => self.hits += 1,
            AccessType::Direct => self.direct += 1,
            AccessType::Conflicting => self.conflicting += 1,
            AccessType::Capacity => self.capacity += 1,
            AccessType::Failed => self.failed += 1,
        }
    }

    /// The counter value for `t`.
    pub fn count(&self, t: AccessType) -> u64 {
        match t {
            AccessType::Hit => self.hits,
            AccessType::Direct => self.direct,
            AccessType::Conflicting => self.conflicting,
            AccessType::Capacity => self.capacity,
            AccessType::Failed => self.failed,
        }
    }

    /// Hit ratio over all processed gets (0 if none).
    pub fn hit_ratio(&self) -> f64 {
        ratio(self.hits, self.total_gets)
    }

    /// The paper's conflict signal: `conflicting / total_gets`.
    pub fn conflict_ratio(&self) -> f64 {
        ratio(self.conflicting, self.total_gets)
    }

    /// The paper's capacity signal: `(capacity + failed) / total_gets`.
    pub fn capacity_ratio(&self) -> f64 {
        ratio(self.capacity + self.failed, self.total_gets)
    }

    /// The paper's sparsity signal `q`: non-empty / total visited entries
    /// during capacity evictions (1.0 when no eviction has run, i.e. the
    /// index is not known to be sparse).
    pub fn eviction_density(&self) -> f64 {
        if self.visited_slots == 0 {
            1.0
        } else {
            self.visited_nonempty as f64 / self.visited_slots as f64
        }
    }

    /// Average index slots visited per capacity eviction.
    pub fn avg_visited_per_eviction(&self) -> f64 {
        ratio(self.visited_slots, self.evictions)
    }

    /// Shadow hit ratio of candidate policy `v` over the gets the policy
    /// lab replayed (0 when the lab is off).
    pub fn shadow_hit_ratio(&self, v: VictimScheme) -> f64 {
        ratio(self.shadow_hits[v.index()], self.shadow_gets)
    }

    /// Difference of counters (self - earlier), for interval-based signals.
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            total_gets: self.total_gets - earlier.total_gets,
            hits: self.hits - earlier.hits,
            partial_hits: self.partial_hits - earlier.partial_hits,
            direct: self.direct - earlier.direct,
            conflicting: self.conflicting - earlier.conflicting,
            capacity: self.capacity - earlier.capacity,
            failed: self.failed - earlier.failed,
            evictions: self.evictions - earlier.evictions,
            visited_slots: self.visited_slots - earlier.visited_slots,
            visited_nonempty: self.visited_nonempty - earlier.visited_nonempty,
            invalidations: self.invalidations - earlier.invalidations,
            adjustments: self.adjustments - earlier.adjustments,
            bytes_from_cache: self.bytes_from_cache - earlier.bytes_from_cache,
            bytes_from_network: self.bytes_from_network - earlier.bytes_from_network,
            retries: self.retries - earlier.retries,
            timeouts: self.timeouts - earlier.timeouts,
            degraded_gets: self.degraded_gets - earlier.degraded_gets,
            abandoned_gets: self.abandoned_gets - earlier.abandoned_gets,
            invalidations_on_failure: self.invalidations_on_failure
                - earlier.invalidations_on_failure,
            coalesced_misses: self.coalesced_misses - earlier.coalesced_misses,
            batched_gets: self.batched_gets - earlier.batched_gets,
            overlapped_wire_ns: self.overlapped_wire_ns - earlier.overlapped_wire_ns,
            stale_hits_prevented: self.stale_hits_prevented - earlier.stale_hits_prevented,
            notifications_drained: self.notifications_drained - earlier.notifications_drained,
            notification_overflows: self.notification_overflows - earlier.notification_overflows,
            version_fetches: self.version_fetches - earlier.version_fetches,
            opt_retries: self.opt_retries - earlier.opt_retries,
            locked_reads: self.locked_reads - earlier.locked_reads,
            policy_switches: self.policy_switches - earlier.policy_switches,
            lease_expiries: self.lease_expiries - earlier.lease_expiries,
            shadow_gets: self.shadow_gets - earlier.shadow_gets,
            shadow_slot_visits: self.shadow_slot_visits - earlier.shadow_slot_visits,
            shadow_hits: std::array::from_fn(|i| self.shadow_hits[i] - earlier.shadow_hits[i]),
            snapshot_gets: self.snapshot_gets - earlier.snapshot_gets,
            snapshot_refetches: self.snapshot_refetches - earlier.snapshot_refetches,
            snapshot_aborts: self.snapshot_aborts - earlier.snapshot_aborts,
            snapshot_staleness_ns: self.snapshot_staleness_ns - earlier.snapshot_staleness_ns,
        }
    }

    /// Fieldwise sum of counters (self += other). Used to merge the
    /// recovery layer's fault counters — kept outside the cache engine so
    /// they exist even in [`crate::Mode::Disabled`] — into one report.
    pub fn merge(&mut self, other: &CacheStats) {
        self.total_gets += other.total_gets;
        self.hits += other.hits;
        self.partial_hits += other.partial_hits;
        self.direct += other.direct;
        self.conflicting += other.conflicting;
        self.capacity += other.capacity;
        self.failed += other.failed;
        self.evictions += other.evictions;
        self.visited_slots += other.visited_slots;
        self.visited_nonempty += other.visited_nonempty;
        self.invalidations += other.invalidations;
        self.adjustments += other.adjustments;
        self.bytes_from_cache += other.bytes_from_cache;
        self.bytes_from_network += other.bytes_from_network;
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.degraded_gets += other.degraded_gets;
        self.abandoned_gets += other.abandoned_gets;
        self.invalidations_on_failure += other.invalidations_on_failure;
        self.coalesced_misses += other.coalesced_misses;
        self.batched_gets += other.batched_gets;
        self.overlapped_wire_ns += other.overlapped_wire_ns;
        self.stale_hits_prevented += other.stale_hits_prevented;
        self.notifications_drained += other.notifications_drained;
        self.notification_overflows += other.notification_overflows;
        self.version_fetches += other.version_fetches;
        self.opt_retries += other.opt_retries;
        self.locked_reads += other.locked_reads;
        self.policy_switches += other.policy_switches;
        self.lease_expiries += other.lease_expiries;
        self.shadow_gets += other.shadow_gets;
        self.shadow_slot_visits += other.shadow_slot_visits;
        for (a, b) in self.shadow_hits.iter_mut().zip(other.shadow_hits.iter()) {
            *a += *b;
        }
        self.snapshot_gets += other.snapshot_gets;
        self.snapshot_refetches += other.snapshot_refetches;
        self.snapshot_aborts += other.snapshot_aborts;
        self.snapshot_staleness_ns += other.snapshot_staleness_ns;
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_classifies_each_type_once() {
        let mut s = CacheStats::default();
        for t in AccessType::ALL {
            s.record(t);
        }
        assert_eq!(s.total_gets, 5);
        for t in AccessType::ALL {
            assert_eq!(s.count(t), 1, "{t:?}");
        }
    }

    #[test]
    fn ratios_handle_zero_denominators() {
        let s = CacheStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(s.conflict_ratio(), 0.0);
        assert_eq!(s.capacity_ratio(), 0.0);
        assert_eq!(s.eviction_density(), 1.0);
        assert_eq!(s.avg_visited_per_eviction(), 0.0);
    }

    #[test]
    fn capacity_ratio_includes_failed() {
        let mut s = CacheStats::default();
        s.record(AccessType::Capacity);
        s.record(AccessType::Failed);
        s.record(AccessType::Hit);
        s.record(AccessType::Hit);
        assert_eq!(s.capacity_ratio(), 0.5);
        assert_eq!(s.hit_ratio(), 0.5);
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let mut a = CacheStats::default();
        a.record(AccessType::Hit);
        let snapshot = a;
        a.record(AccessType::Direct);
        a.record(AccessType::Hit);
        let d = a.delta_since(&snapshot);
        assert_eq!(d.total_gets, 2);
        assert_eq!(d.hits, 1);
        assert_eq!(d.direct, 1);
    }

    #[test]
    fn delta_and_merge_cover_batching_counters() {
        let a = CacheStats {
            coalesced_misses: 7,
            batched_gets: 20,
            overlapped_wire_ns: 5_000,
            stale_hits_prevented: 9,
            notifications_drained: 30,
            notification_overflows: 3,
            version_fetches: 12,
            opt_retries: 6,
            locked_reads: 8,
            policy_switches: 4,
            lease_expiries: 40,
            shadow_gets: 100,
            shadow_slot_visits: 900,
            shadow_hits: [50, 60, 20, 55, 70],
            ..CacheStats::default()
        };
        let earlier = CacheStats {
            coalesced_misses: 2,
            batched_gets: 5,
            overlapped_wire_ns: 1_000,
            stale_hits_prevented: 4,
            notifications_drained: 10,
            notification_overflows: 1,
            version_fetches: 2,
            opt_retries: 1,
            locked_reads: 3,
            policy_switches: 1,
            lease_expiries: 15,
            shadow_gets: 30,
            shadow_slot_visits: 200,
            shadow_hits: [10, 20, 5, 15, 30],
            ..CacheStats::default()
        };
        let d = a.delta_since(&earlier);
        assert_eq!(d.coalesced_misses, 5);
        assert_eq!(d.batched_gets, 15);
        assert_eq!(d.overlapped_wire_ns, 4_000);
        assert_eq!(d.stale_hits_prevented, 5);
        assert_eq!(d.notifications_drained, 20);
        assert_eq!(d.notification_overflows, 2);
        assert_eq!(d.version_fetches, 10);
        assert_eq!(d.opt_retries, 5);
        assert_eq!(d.locked_reads, 5);
        assert_eq!(d.policy_switches, 3);
        assert_eq!(d.lease_expiries, 25);
        assert_eq!(d.shadow_gets, 70);
        assert_eq!(d.shadow_slot_visits, 700);
        assert_eq!(d.shadow_hits, [40, 40, 15, 40, 40]);
        let mut m = earlier;
        m.merge(&d);
        assert_eq!(m, a);
    }

    /// A stats value with *every* counter set to a distinct nonzero value.
    /// Deliberately an exhaustive struct literal — no `..Default()` — so
    /// adding a `CacheStats` field without wiring it here (and checking it
    /// through `merge`/`delta_since` below) is a compile error, not a
    /// silently dropped counter. PRs 4–8 each had to hand-verify this.
    fn filled(seed: u64) -> CacheStats {
        let mut n = seed;
        let mut next = || {
            n += 1;
            n
        };
        CacheStats {
            total_gets: next(),
            hits: next(),
            partial_hits: next(),
            direct: next(),
            conflicting: next(),
            capacity: next(),
            failed: next(),
            evictions: next(),
            visited_slots: next(),
            visited_nonempty: next(),
            invalidations: next(),
            adjustments: next(),
            bytes_from_cache: next(),
            bytes_from_network: next(),
            retries: next(),
            timeouts: next(),
            degraded_gets: next(),
            abandoned_gets: next(),
            invalidations_on_failure: next(),
            coalesced_misses: next(),
            batched_gets: next(),
            overlapped_wire_ns: next(),
            stale_hits_prevented: next(),
            notifications_drained: next(),
            notification_overflows: next(),
            version_fetches: next(),
            opt_retries: next(),
            locked_reads: next(),
            policy_switches: next(),
            lease_expiries: next(),
            shadow_gets: next(),
            shadow_slot_visits: next(),
            shadow_hits: std::array::from_fn(|_| next()),
            snapshot_gets: next(),
            snapshot_refetches: next(),
            snapshot_aborts: next(),
            snapshot_staleness_ns: next(),
        }
    }

    #[test]
    fn merge_and_delta_round_trip_every_field() {
        let a = filled(100);
        // merge adds every field: folding `a` into zero must reproduce it
        // exactly (a `+=` line missing from `merge` leaves a zero behind).
        let mut z = CacheStats::default();
        z.merge(&a);
        assert_eq!(z, a, "merge dropped a field");
        // delta subtracts every field: with b = a ⊕ d, recovering d via
        // b.delta_since(&a) catches a field copied instead of subtracted.
        let d = filled(10_000);
        let mut b = a;
        b.merge(&d);
        assert_eq!(b.delta_since(&a), d, "delta_since mishandled a field");
        // And the two are inverses from zero.
        assert_eq!(a.delta_since(&CacheStats::default()), a);
    }

    #[test]
    fn shadow_hit_ratio_is_per_policy() {
        let s = CacheStats {
            shadow_gets: 100,
            shadow_hits: [50, 25, 0, 10, 75],
            ..CacheStats::default()
        };
        assert_eq!(s.shadow_hit_ratio(VictimScheme::Full), 0.5);
        assert_eq!(s.shadow_hit_ratio(VictimScheme::Temporal), 0.25);
        assert_eq!(s.shadow_hit_ratio(VictimScheme::Positional), 0.0);
        assert_eq!(s.shadow_hit_ratio(VictimScheme::ExactLru), 0.1);
        assert_eq!(s.shadow_hit_ratio(VictimScheme::Lease), 0.75);
        assert_eq!(
            CacheStats::default().shadow_hit_ratio(VictimScheme::Full),
            0.0
        );
    }

    #[test]
    fn eviction_density_counts_nonempty_fraction() {
        let s = CacheStats {
            evictions: 2,
            visited_slots: 40,
            visited_nonempty: 10,
            ..CacheStats::default()
        };
        assert_eq!(s.eviction_density(), 0.25);
        assert_eq!(s.avg_visited_per_eviction(), 20.0);
    }
}
