//! Coherence for cached reads under concurrent remote `put`s.
//!
//! The paper's CLaMPI caches only `get`s and punts staleness to the user
//! via `CLAMPI_Invalidate`: any workload where another rank `put`s into a
//! cached region is unsafe to cache. This module closes that gap with two
//! RMA-layer primitives (see `clampi_rma::window`):
//!
//! - **Version counters**: every window region carries a monotonic write
//!   version, bumped on each `put`/accumulate touching it. A get observes
//!   the version *before* its bytes are read, so a cache entry stamped
//!   with version `v` is guaranteed to contain no byte written after `v`
//!   (it may conservatively look older than it is — never newer).
//! - **Put-notification channels**: each region keeps a bounded ring of
//!   `(origin, disp, len, version)` records, one per put. A reader drains
//!   the records it has not yet seen; a ring overflow is detected (not
//!   silently dropped) and reported so the reader can fall back to a full
//!   per-target invalidation.
//!
//! [`CoherenceMode`] selects how a [`crate::CachedWindow`] uses them:
//!
//! | mode | wire cost per pass | invalidation granularity |
//! |------|--------------------|--------------------------|
//! | `None` | zero | none (pre-coherence behaviour, bit-identical) |
//! | `EpochValidate` | one 8-byte version fetch per cached target | whole target on any version change |
//! | `EagerInvalidate` | CPU-only notification drain | only entries overlapping a drained put record |
//!
//! Passes run at access-epoch *openings* (`lock`, `lock_all`, `start`) and
//! after every `flush`/`flush_all`/`fence` — the points where MPI's epoch
//! rules make remotely-written data newly visible. Targets already marked
//! degraded (persistently failed) are skipped; a target that *fails during
//! a pass* is degraded on the spot, which drops every entry keyed to it —
//! its pending notifications degrade to a full per-target invalidation
//! rather than being lost.

use clampi_rma::{Process, PutRecord, RmaError, Window};

use crate::cache::RmaCache;
use crate::recovery::{with_retry, RetryPolicy};
use crate::stats::CacheStats;

/// How a cached window keeps its entries coherent with remote `put`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoherenceMode {
    /// No coherence: staleness handling is the user's problem, exactly as
    /// in the paper (`CLAMPI_Invalidate`). Bit-identical to the
    /// pre-coherence code path.
    #[default]
    None,
    /// Lazy revalidation: at each pass, fetch the target's current write
    /// version (one 8-byte round trip) and drop every cached entry whose
    /// stored version differs. Pays wire latency per pass, needs no
    /// notification ring.
    EpochValidate,
    /// Surgical invalidation: at each pass, drain the target's
    /// put-notification ring (CPU-only, the records piggyback on epoch
    /// synchronization) and drop only the cached entries that overlap a
    /// put issued after they were filled. A ring overflow falls back to a
    /// full per-target invalidation.
    EagerInvalidate,
}

/// Per-window coherence state: one drain cursor per target (the ring
/// version up to which notifications have been consumed) plus reusable
/// scratch buffers for drained records.
#[derive(Debug, Default)]
pub(crate) struct CoherenceTracker {
    /// `cursors[t]` = ring version of `t` up to which this rank has
    /// drained (EagerInvalidate only).
    cursors: Vec<u64>,
    /// Drained records land here (reused across passes).
    scratch: Vec<PutRecord>,
    /// Records rewritten as `(lo, hi, version)` byte ranges for the index
    /// overlap probe (reused across passes).
    ranges: Vec<(u64, u64, u64)>,
}

impl CoherenceTracker {
    pub(crate) fn new(ntargets: usize) -> Self {
        CoherenceTracker {
            cursors: vec![0; ntargets],
            scratch: Vec::new(),
            ranges: Vec::new(),
        }
    }

    /// Runs one coherence pass over `target` (`None` = every target) in
    /// the mode configured on `cache`'s parameters. Management CPU time
    /// accumulates in the cache engine; the caller drains it via
    /// `RmaCache::take_cost` and charges the rank's clock.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_pass(
        &mut self,
        p: &mut Process,
        win: &mut Window,
        cache: &mut RmaCache,
        fault_stats: &mut CacheStats,
        degraded: &mut [bool],
        retry: &RetryPolicy,
        target: Option<usize>,
    ) {
        let mode = cache.params().coherence;
        if mode == CoherenceMode::None {
            return;
        }
        let n = win.ntargets();
        if self.cursors.len() < n {
            self.cursors.resize(n, 0);
        }
        let targets: Vec<usize> = match target {
            Some(t) => vec![t],
            None => (0..n).collect(),
        };
        for t in targets {
            if degraded[t] {
                continue;
            }
            match mode {
                CoherenceMode::None => unreachable!("early return above"),
                CoherenceMode::EpochValidate => {
                    self.validate_target(p, win, cache, fault_stats, degraded, retry, t);
                }
                CoherenceMode::EagerInvalidate => {
                    self.drain_target(p, win, cache, fault_stats, degraded, retry, t);
                }
            }
        }
    }

    /// `EpochValidate` for one target: fetch the current write version,
    /// drop entries stamped with any other version.
    #[allow(clippy::too_many_arguments)]
    fn validate_target(
        &mut self,
        p: &mut Process,
        win: &mut Window,
        cache: &mut RmaCache,
        fault_stats: &mut CacheStats,
        degraded: &mut [bool],
        retry: &RetryPolicy,
        t: usize,
    ) {
        if !cache.has_entries_for(t as u32) {
            return;
        }
        match with_retry(p, retry, fault_stats, |p| win.try_fetch_version(p, t)) {
            Ok(v) => {
                fault_stats.version_fetches += 1;
                let dropped = cache.invalidate_target_stale(t as u32, v);
                fault_stats.stale_hits_prevented += dropped as u64;
            }
            Err(e) => fail_target(cache, fault_stats, degraded, t, e),
        }
    }

    /// `EagerInvalidate` for one target: drain its notification ring and
    /// invalidate exactly the overlapped-and-older entries; a ring
    /// overflow degrades to a full per-target invalidation.
    #[allow(clippy::too_many_arguments)]
    fn drain_target(
        &mut self,
        p: &mut Process,
        win: &mut Window,
        cache: &mut RmaCache,
        fault_stats: &mut CacheStats,
        degraded: &mut [bool],
        retry: &RetryPolicy,
        t: usize,
    ) {
        if !cache.has_entries_for(t as u32) {
            // Nothing cached: skip the drain but refresh the cursor from
            // the zero-cost version peek, so old records cannot trigger a
            // spurious overflow later. Safe because any entry filled from
            // now on is stamped with a version ≥ this peek, and the stale
            // check (`entry.version < record.version`) can therefore
            // never need the skipped records.
            self.cursors[t] = win.version(t);
            return;
        }
        self.scratch.clear();
        let cursor = self.cursors[t];
        let scratch = &mut self.scratch;
        let drained = with_retry(p, retry, fault_stats, |p| {
            win.try_drain_notifications(p, t, cursor, scratch)
        });
        match drained {
            Ok(drain) => {
                if drain.overflowed {
                    fault_stats.notification_overflows += 1;
                    let dropped = cache.invalidate_range(t as u32, 0, u64::MAX);
                    fault_stats.stale_hits_prevented += dropped as u64;
                } else {
                    fault_stats.notifications_drained += self.scratch.len() as u64;
                    self.ranges.clear();
                    self.ranges.extend(
                        self.scratch
                            .iter()
                            .map(|r| (r.disp, r.disp + r.len, r.version)),
                    );
                    let dropped = cache.invalidate_overlapping_stale(t as u32, &self.ranges);
                    fault_stats.stale_hits_prevented += dropped as u64;
                }
                self.cursors[t] = drain.version;
            }
            Err(e) => fail_target(cache, fault_stats, degraded, t, e),
        }
    }
}

/// A coherence pass could not reach `t`: its cached entries can no longer
/// be validated, so they are all dropped (the pending notifications
/// degrade to a full per-target invalidation — never a silent drop). A
/// persistent failure additionally marks the target degraded, routing all
/// later accesses through the degraded path.
fn fail_target(
    cache: &mut RmaCache,
    fault_stats: &mut CacheStats,
    degraded: &mut [bool],
    t: usize,
    err: RmaError,
) {
    if matches!(err, RmaError::TargetFailed { .. }) {
        degraded[t] = true;
    }
    let dropped = cache.invalidate_range(t as u32, 0, u64::MAX);
    fault_stats.invalidations_on_failure += dropped as u64;
}
