//! Victim-selection scores (Sec. III-C2 and III-D1).
//!
//! Each cache entry `x` is scored by:
//!
//! - a **temporal** score `R_T(x) = x.last / i` — the LRU-like recency
//!   ratio between the sequence number of the last get that matched `x`
//!   and the current get sequence number `i`;
//! - a **positional** score `R_P(x) = min(|ags - d_x| / ags, 1)` — how far
//!   the free space adjacent to `x` (`d_x`) is from the running average get
//!   size (`ags`): evicting an entry whose adjacent free space is close to
//!   `ags` is likely to open a usable hole;
//! - the **full** score `R(x) = R_P(x) · R_T(x)`.
//!
//! The eviction procedure selects the *lowest* score among a sample of
//! entries. The paper's Figs. 10–11 ablate the three schemes; the
//! [`VictimScheme`] enum selects which one is active.

/// Which score drives victim selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VictimScheme {
    /// `R = R_P · R_T` (the paper's proposal; default).
    #[default]
    Full,
    /// LRU-like: `R = R_T` only.
    Temporal,
    /// Fragmentation-only: `R = R_P`.
    Positional,
    /// Exact least-recently-used eviction via a recency index — an
    /// ablation baseline beyond the paper (the paper approximates LRU
    /// with the sampled `R_T`): perfect victim recency at the price of a
    /// recency-structure update on every hit.
    ExactLru,
    /// Lease-based eviction ([`crate::lease`]): every entry carries a
    /// lease (a predicted reuse distance in get-sequence units, learned
    /// online from a per-key-stripe reuse histogram); victims are picked
    /// most-expired-first under the virtual clock, falling back to the
    /// entry whose lease has the least time left.
    Lease,
}

/// Number of candidate victim schemes ([`VictimScheme::ALL`]); sizes the
/// per-policy shadow-hit counters in [`crate::CacheStats`].
pub const POLICY_COUNT: usize = 5;

impl VictimScheme {
    /// Stable label used by the figure binaries. Round-trips through
    /// [`str::parse`] for every scheme in [`VictimScheme::ALL`].
    pub fn label(&self) -> &'static str {
        match self {
            VictimScheme::Full => "full",
            VictimScheme::Temporal => "temporal",
            VictimScheme::Positional => "positional",
            VictimScheme::ExactLru => "exact-lru",
            VictimScheme::Lease => "lease",
        }
    }

    /// The position of this scheme in [`VictimScheme::ALL`] — the index
    /// of its shadow-hit counter in [`crate::CacheStats::shadow_hits`].
    pub fn index(&self) -> usize {
        match self {
            VictimScheme::Full => 0,
            VictimScheme::Temporal => 1,
            VictimScheme::Positional => 2,
            VictimScheme::ExactLru => 3,
            VictimScheme::Lease => 4,
        }
    }

    /// All schemes in reporting order.
    pub const ALL: [VictimScheme; POLICY_COUNT] = [
        VictimScheme::Full,
        VictimScheme::Temporal,
        VictimScheme::Positional,
        VictimScheme::ExactLru,
        VictimScheme::Lease,
    ];

    /// The three sampled schemes of the paper's Figs. 10-11.
    pub const SAMPLED: [VictimScheme; 3] = [
        VictimScheme::Full,
        VictimScheme::Temporal,
        VictimScheme::Positional,
    ];
}

/// Schemes parse from their [`VictimScheme::label`] form, so benches and
/// `run_all --only`-style filters can select policies by name.
impl std::str::FromStr for VictimScheme {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        VictimScheme::ALL
            .into_iter()
            .find(|v| v.label() == s)
            .ok_or_else(|| {
                let known: Vec<&str> = VictimScheme::ALL.iter().map(|v| v.label()).collect();
                format!("unknown victim scheme {s:?} (known: {})", known.join(", "))
            })
    }
}

/// The temporal score `R_T = last / now` (both 1-based get sequence
/// numbers). 1.0 when `now` is 0 (nothing processed yet).
pub fn temporal_score(last: u64, now: u64) -> f64 {
    if now == 0 {
        1.0
    } else {
        last as f64 / now as f64
    }
}

/// The positional score `R_P = min(|ags - d_c| / ags, 1)`.
///
/// Lower means "evicting this entry likely frees a hole of about the size
/// the workload is asking for". When `ags` is not yet meaningful — not a
/// finite positive number — every entry scores 1 (position carries no
/// information). The NaN/infinite guard matters: `ags` is a running mean
/// fed by the caller, and a degenerate mean must degrade victim selection
/// to temporal-only, not poison the score comparison with NaN (any
/// comparison against NaN is false, which would freeze the victim scan on
/// its first candidate).
pub fn positional_score(ags: f64, adjacent_free: usize) -> f64 {
    if !ags.is_finite() || ags <= 0.0 {
        return 1.0;
    }
    ((ags - adjacent_free as f64).abs() / ags).min(1.0)
}

/// The combined score for `scheme`.
pub fn score(scheme: VictimScheme, r_p: f64, r_t: f64) -> f64 {
    match scheme {
        VictimScheme::Full => r_p * r_t,
        // ExactLru uses its recency index and Lease its expiry clock for
        // capacity evictions; on the (scored) conflicting path both fall
        // back to pure recency.
        VictimScheme::Temporal | VictimScheme::ExactLru | VictimScheme::Lease => r_t,
        VictimScheme::Positional => r_p,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temporal_score_is_recency_ratio() {
        assert_eq!(temporal_score(50, 100), 0.5);
        assert_eq!(temporal_score(100, 100), 1.0);
        assert_eq!(temporal_score(0, 0), 1.0);
    }

    #[test]
    fn recently_used_entries_score_higher() {
        let old = temporal_score(10, 1000);
        let fresh = temporal_score(990, 1000);
        assert!(fresh > old);
    }

    #[test]
    fn positional_score_minimized_when_adjacent_matches_ags() {
        let ags = 1024.0;
        let exact = positional_score(ags, 1024);
        let off = positional_score(ags, 0);
        let far = positional_score(ags, 10_000);
        assert_eq!(exact, 0.0);
        assert_eq!(off, 1.0);
        assert_eq!(far, 1.0, "clamped at 1");
        assert!(positional_score(ags, 768) < positional_score(ags, 256));
    }

    #[test]
    fn positional_score_degenerate_ags() {
        assert_eq!(positional_score(0.0, 500), 1.0);
        assert_eq!(positional_score(-1.0, 0), 1.0);
    }

    #[test]
    fn positional_score_non_finite_ags_is_neutral_not_nan() {
        for ags in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            for adj in [0usize, 1, 1 << 20] {
                let s = positional_score(ags, adj);
                assert_eq!(s, 1.0, "ags={ags}, adj={adj}");
                assert!(!s.is_nan());
            }
        }
    }

    #[test]
    fn full_score_is_product_and_bounded() {
        for &(rp, rt) in &[(0.0, 1.0), (1.0, 0.0), (0.5, 0.5), (1.0, 1.0)] {
            let s = score(VictimScheme::Full, rp, rt);
            assert!((0.0..=1.0).contains(&s));
            assert_eq!(s, rp * rt);
        }
    }

    #[test]
    fn schemes_project_the_right_component() {
        assert_eq!(score(VictimScheme::Temporal, 0.2, 0.9), 0.9);
        assert_eq!(score(VictimScheme::Positional, 0.2, 0.9), 0.2);
        assert_eq!(score(VictimScheme::Full, 0.2, 0.9), 0.2 * 0.9);
    }

    #[test]
    fn labels_round_trip_through_from_str_exhaustively() {
        assert_eq!(VictimScheme::ALL.len(), POLICY_COUNT);
        for (i, v) in VictimScheme::ALL.into_iter().enumerate() {
            assert_eq!(v.index(), i, "{v:?} out of reporting order");
            let parsed: VictimScheme = v.label().parse().expect("label must parse");
            assert_eq!(parsed, v, "label {:?} did not round-trip", v.label());
        }
        let err = "no-such-policy".parse::<VictimScheme>().unwrap_err();
        for v in VictimScheme::ALL {
            assert!(err.contains(v.label()), "error must list {:?}", v.label());
        }
    }

    #[test]
    fn full_scheme_prefers_old_and_well_positioned() {
        // Entry A: old and adjacent space ~ ags -> very low score (victim).
        // Entry B: recent and badly positioned -> high score (kept).
        let ags = 512.0;
        let a = score(
            VictimScheme::Full,
            positional_score(ags, 512),
            temporal_score(10, 1000),
        );
        let b = score(
            VictimScheme::Full,
            positional_score(ags, 0),
            temporal_score(950, 1000),
        );
        assert!(a < b);
    }
}
