//! Online adaptation of `|I_w|` and `|S_w|` (Sec. III-E1).
//!
//! The controller watches interval statistics and resizes:
//!
//! - `conflicting / total > conflict_threshold` → grow the index;
//! - eviction-scan density `q < sparsity_threshold` → shrink the index
//!   (a sparse index makes victim samples poor);
//! - `(capacity + failed) / total > capacity_threshold` → grow the storage;
//! - `hits / total > stable_threshold` **and** free space above
//!   `free_fraction_threshold` **and** no evictions in the interval →
//!   shrink the storage (working set stable and over-provisioned).
//!
//! Any change requires a cache invalidation, so the controller fires at
//! most one rule per check and the wrapper counts it as an *adjustment*
//! (the numbers annotated on the paper's Figs. 9, 12, 15, 17).
//!
//! With [`AdaptiveParams::policy_switching`] enabled the controller also
//! watches the policy lab's shadow hit ratios ([`crate::vcache`]) and can
//! emit a [`AdjustRule::SwitchPolicy`] decision: swap the live eviction
//! policy for a shadow policy that beat it. Unlike resizes, a switch does
//! **not** invalidate the cache — residents stay, only the victim-scoring
//! rule changes — so it is checked *before* the resize rules. Hysteresis:
//! the same winner must beat the live policy's shadow ratio by
//! [`AdaptiveParams::switch_margin`] in two consecutive intervals before
//! the switch fires, so a single noisy interval cannot flip the policy.

use crate::eviction::VictimScheme;
use crate::stats::CacheStats;

/// Thresholds, factors and bounds of the adaptive strategy.
#[derive(Debug, Clone)]
pub struct AdaptiveParams {
    /// Gets between checks.
    pub interval: u64,
    /// Grow `|I_w|` above this conflicting ratio.
    pub conflict_threshold: f64,
    /// Grow `|S_w|` above this capacity+failed ratio.
    pub capacity_threshold: f64,
    /// Consider the working set stable above this hit ratio.
    pub stable_threshold: f64,
    /// Shrink `|I_w|` below this eviction-scan density `q`.
    pub sparsity_threshold: f64,
    /// Shrink `|S_w|` only if at least this fraction of it is free.
    pub free_fraction_threshold: f64,
    /// Multiplier when growing the index (`index_increase_factor`).
    pub index_increase_factor: f64,
    /// Divisor when shrinking the index (`index_decrease_factor`).
    pub index_decrease_factor: f64,
    /// Multiplier when growing the storage (`memory_increase_factor`).
    pub memory_increase_factor: f64,
    /// Divisor when shrinking the storage (`memory_decrease_factor`).
    pub memory_decrease_factor: f64,
    /// Bounds on `|I_w|` (slots).
    pub index_bounds: (usize, usize),
    /// Bounds on `|S_w|` (bytes).
    pub storage_bounds: (usize, usize),
    /// Allow [`AdjustRule::SwitchPolicy`] decisions driven by the policy
    /// lab's shadow hit ratios. Off by default: requires
    /// [`crate::CacheParams::policy_lab`] to produce shadow statistics,
    /// and keeping it off preserves the controller's historical (paper
    /// Fig. 9) decision sequence bit-for-bit.
    pub policy_switching: bool,
    /// A shadow policy must beat the live policy's shadow hit ratio by
    /// this margin (absolute) to become a switch candidate.
    pub switch_margin: f64,
}

impl Default for AdaptiveParams {
    fn default() -> Self {
        AdaptiveParams {
            interval: 2048,
            conflict_threshold: 0.10,
            capacity_threshold: 0.10,
            stable_threshold: 0.80,
            sparsity_threshold: 0.20,
            free_fraction_threshold: 0.70,
            index_increase_factor: 2.0,
            index_decrease_factor: 2.0,
            memory_increase_factor: 2.0,
            memory_decrease_factor: 2.0,
            index_bounds: (64, 1 << 26),
            storage_bounds: (64 << 10, 4 << 30),
            policy_switching: false,
            switch_margin: 0.02,
        }
    }
}

/// A resize decision: the new `(|I_w|, |S_w|)` to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Adjustment {
    /// New index slot count.
    pub index_entries: usize,
    /// New storage byte size.
    pub storage_bytes: usize,
    /// Which rule fired (for logging/figures).
    pub rule: AdjustRule,
    /// For [`AdjustRule::SwitchPolicy`]: the policy to switch to.
    /// `None` for every resize rule.
    pub policy: Option<VictimScheme>,
}

/// The rule that triggered an adjustment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdjustRule {
    /// Too many conflicting accesses: index grown.
    GrowIndex,
    /// Sparse eviction scans: index shrunk.
    ShrinkIndex,
    /// Too many capacity/failed accesses: storage grown.
    GrowStorage,
    /// Stable working set with surplus space: storage shrunk.
    ShrinkStorage,
    /// A shadow policy sustained a better hit ratio: live policy swapped
    /// (no invalidation — residents survive a switch).
    SwitchPolicy,
}

/// The interval-based controller.
#[derive(Debug)]
pub struct AdaptiveController {
    params: AdaptiveParams,
    snapshot: CacheStats,
    cooldown: bool,
    // Convergence hysteresis: once an adjustment direction *reverses*
    // (a grow following a shrink or vice versa) the right size has been
    // bracketed; from then on only pressure-driven grows are allowed, so
    // the controller cannot oscillate — each invalidation costs a full
    // cache refill.
    last_index: Option<AdjustRule>,
    index_shrink_forbidden: bool,
    last_storage: Option<AdjustRule>,
    storage_shrink_forbidden: bool,
    // Free fraction observed at the previous evaluated check: shrinking is
    // only sound once the buffer has stopped filling (otherwise the
    // controller mistakes a still-warming cache for an over-provisioned
    // one and shrinks below the working set).
    prev_free: Option<f64>,
    // The eviction policy currently live in the cache. Kept in sync via
    // [`AdaptiveController::note_policy`]; the switch rule compares shadow
    // ratios against this policy's shadow.
    live_policy: VictimScheme,
    // Switch hysteresis: the shadow winner of the previous interval. A
    // switch fires only when the same policy wins two intervals running.
    pending_winner: Option<VictimScheme>,
}

impl AdaptiveController {
    /// A controller starting from zeroed statistics.
    pub fn new(params: AdaptiveParams) -> Self {
        AdaptiveController {
            params,
            snapshot: CacheStats::default(),
            cooldown: false,
            last_index: None,
            index_shrink_forbidden: false,
            last_storage: None,
            storage_shrink_forbidden: false,
            prev_free: None,
            live_policy: VictimScheme::Full,
            pending_winner: None,
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &AdaptiveParams {
        &self.params
    }

    /// Tells the controller which eviction policy is live (call at
    /// construction and after applying a [`AdjustRule::SwitchPolicy`]
    /// decision). Resets any half-accumulated switch hysteresis.
    pub fn note_policy(&mut self, live: VictimScheme) {
        if live != self.live_policy {
            self.live_policy = live;
            self.pending_winner = None;
        }
    }

    /// The policy the controller believes is live.
    pub fn live_policy(&self) -> VictimScheme {
        self.live_policy
    }

    /// Checks the interval statistics; returns a resize decision if a rule
    /// fires. `free_fraction` is the current free share of the storage
    /// buffer. Call at epoch closures; cheap no-op until `interval` gets
    /// have accumulated.
    pub fn maybe_adjust(
        &mut self,
        stats: &CacheStats,
        index_entries: usize,
        storage_bytes: usize,
        free_fraction: f64,
    ) -> Option<Adjustment> {
        let delta = stats.delta_since(&self.snapshot);
        if delta.total_gets < self.params.interval {
            return None;
        }
        self.snapshot = *stats;
        // The interval right after an adjustment is polluted by the
        // invalidation (refill misses, artificially high free space);
        // evaluating the rules on it makes the controller oscillate.
        if self.cooldown {
            self.cooldown = false;
            return None;
        }

        // Policy switch first: it is cheaper than any resize (no
        // invalidation), so when shadows say a different policy would hit
        // more, switching beats growing.
        if self.params.policy_switching && delta.shadow_gets > 0 {
            let ratio = |v: VictimScheme| delta.shadow_hit_ratio(v);
            let live_ratio = ratio(self.live_policy);
            // Ties favor the incumbent: a challenger must be strictly
            // better than both the live policy and every earlier scheme
            // before it can even be considered.
            let mut winner = self.live_policy;
            let mut best = live_ratio;
            for v in VictimScheme::ALL {
                let r = ratio(v);
                if r > best {
                    best = r;
                    winner = v;
                }
            }
            if winner != self.live_policy && best > live_ratio + self.params.switch_margin {
                if self.pending_winner == Some(winner) {
                    // Second consecutive win: switch.
                    self.pending_winner = None;
                    self.live_policy = winner;
                    self.cooldown = true;
                    return Some(Adjustment {
                        index_entries,
                        storage_bytes,
                        rule: AdjustRule::SwitchPolicy,
                        policy: Some(winner),
                    });
                }
                self.pending_winner = Some(winner);
            } else {
                self.pending_winner = None;
            }
        }

        let p = &self.params;
        // Degenerate-input guards: a zero lower bound would let a shrink
        // produce a zero-slot index / zero-byte storage (both panic or
        // wedge downstream), and a NaN/infinite resize factor would turn
        // `v.round() as usize` into 0 or usize::MAX. Non-finite targets
        // fall back to the current size, which reads as "no change" and
        // suppresses the adjustment.
        let clamp_i = |v: f64, cur: usize| {
            let lo = p.index_bounds.0.max(1);
            let hi = p.index_bounds.1.max(lo);
            if v.is_finite() {
                (v.round() as usize).clamp(lo, hi)
            } else {
                cur
            }
        };
        let clamp_s = |v: f64, cur: usize| {
            let lo = p.storage_bounds.0.max(1);
            let hi = p.storage_bounds.1.max(lo);
            if v.is_finite() {
                (v.round() as usize).clamp(lo, hi)
            } else {
                cur
            }
        };

        if delta.conflict_ratio() > p.conflict_threshold {
            let new = clamp_i(
                index_entries as f64 * p.index_increase_factor,
                index_entries,
            );
            if new != index_entries {
                return Some(self.apply_index(AdjustRule::GrowIndex, new, storage_bytes));
            }
        }
        if delta.capacity_ratio() > p.capacity_threshold {
            let new = clamp_s(
                storage_bytes as f64 * p.memory_increase_factor,
                storage_bytes,
            );
            if new != storage_bytes {
                return Some(self.apply_storage(AdjustRule::GrowStorage, index_entries, new));
            }
        }
        if !self.index_shrink_forbidden
            && self.last_index != Some(AdjustRule::GrowIndex)
            && delta.evictions > 0
            && delta.eviction_density() < p.sparsity_threshold
        {
            let new = clamp_i(
                index_entries as f64 / p.index_decrease_factor,
                index_entries,
            );
            if new != index_entries {
                return Some(self.apply_index(AdjustRule::ShrinkIndex, new, storage_bytes));
            }
        }
        let filling = match self.prev_free {
            Some(prev) => prev - free_fraction > 0.02,
            None => true, // first check: assume still warming
        };
        self.prev_free = Some(free_fraction);
        if !self.storage_shrink_forbidden
            && self.last_storage != Some(AdjustRule::GrowStorage)
            && !filling
            && delta.evictions == 0
            && delta.failed == 0
            && delta.hit_ratio() > p.stable_threshold
            && free_fraction > p.free_fraction_threshold
        {
            let new = clamp_s(
                storage_bytes as f64 / p.memory_decrease_factor,
                storage_bytes,
            );
            if new != storage_bytes {
                self.prev_free = None; // resized: free fraction resets
                return Some(self.apply_storage(AdjustRule::ShrinkStorage, index_entries, new));
            }
        }
        None
    }

    fn apply_index(
        &mut self,
        rule: AdjustRule,
        index_entries: usize,
        storage_bytes: usize,
    ) -> Adjustment {
        self.cooldown = true;
        // A grow after a shrink means the size is bracketed: no more shrinks.
        if self.last_index.is_some() && self.last_index != Some(rule) {
            self.index_shrink_forbidden = true;
        }
        self.last_index = Some(rule);
        Adjustment {
            index_entries,
            storage_bytes,
            rule,
            policy: None,
        }
    }

    fn apply_storage(
        &mut self,
        rule: AdjustRule,
        index_entries: usize,
        storage_bytes: usize,
    ) -> Adjustment {
        self.cooldown = true;
        if self.last_storage.is_some() && self.last_storage != Some(rule) {
            self.storage_shrink_forbidden = true;
        }
        self.last_storage = Some(rule);
        Adjustment {
            index_entries,
            storage_bytes,
            rule,
            policy: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::AccessType;

    fn controller(interval: u64) -> AdaptiveController {
        AdaptiveController::new(AdaptiveParams {
            interval,
            ..AdaptiveParams::default()
        })
    }

    fn stats_with(
        hits: u64,
        direct: u64,
        conflicting: u64,
        capacity: u64,
        failed: u64,
    ) -> CacheStats {
        let mut s = CacheStats::default();
        for _ in 0..hits {
            s.record(AccessType::Hit);
        }
        for _ in 0..direct {
            s.record(AccessType::Direct);
        }
        for _ in 0..conflicting {
            s.record(AccessType::Conflicting);
        }
        for _ in 0..capacity {
            s.record(AccessType::Capacity);
        }
        for _ in 0..failed {
            s.record(AccessType::Failed);
        }
        s
    }

    #[test]
    fn quiet_until_interval_reached() {
        let mut c = controller(100);
        let s = stats_with(10, 10, 30, 0, 0);
        assert!(c.maybe_adjust(&s, 1024, 1 << 20, 0.1).is_none());
    }

    #[test]
    fn high_conflicts_grow_index() {
        let mut c = controller(100);
        let s = stats_with(50, 20, 30, 0, 0);
        let adj = c.maybe_adjust(&s, 1024, 1 << 20, 0.1).unwrap();
        assert_eq!(adj.rule, AdjustRule::GrowIndex);
        assert_eq!(adj.index_entries, 2048);
        assert_eq!(adj.storage_bytes, 1 << 20);
    }

    #[test]
    fn capacity_pressure_grows_storage() {
        let mut c = controller(100);
        let s = stats_with(50, 20, 0, 20, 10);
        let adj = c.maybe_adjust(&s, 1024, 1 << 20, 0.0).unwrap();
        assert_eq!(adj.rule, AdjustRule::GrowStorage);
        assert_eq!(adj.storage_bytes, 2 << 20);
    }

    #[test]
    fn stable_and_roomy_shrinks_storage() {
        let mut c = controller(100);
        // First check establishes the free-fraction baseline (warm-up
        // guard); the second check, with stable free space, shrinks.
        let s1 = stats_with(95, 5, 0, 0, 0);
        assert!(c.maybe_adjust(&s1, 1024, 4 << 20, 0.9).is_none());
        let mut s2 = s1;
        for _ in 0..100 {
            s2.record(AccessType::Hit);
        }
        let adj = c.maybe_adjust(&s2, 1024, 4 << 20, 0.9).unwrap();
        assert_eq!(adj.rule, AdjustRule::ShrinkStorage);
        assert_eq!(adj.storage_bytes, 2 << 20);
    }

    #[test]
    fn shrink_waits_for_fill_to_stabilize() {
        let mut c = controller(100);
        // Free fraction dropping by >2% per interval = still warming.
        let mut s = stats_with(95, 5, 0, 0, 0);
        assert!(c.maybe_adjust(&s, 1024, 4 << 20, 0.9).is_none());
        for _ in 0..100 {
            s.record(AccessType::Hit);
        }
        assert!(
            c.maybe_adjust(&s, 1024, 4 << 20, 0.8).is_none(),
            "free fell 0.9 -> 0.8: still filling, no shrink"
        );
    }

    #[test]
    fn stable_but_full_is_left_alone() {
        let mut c = controller(100);
        let s = stats_with(95, 5, 0, 0, 0);
        assert!(c.maybe_adjust(&s, 1024, 4 << 20, 0.2).is_none());
    }

    #[test]
    fn sparse_eviction_scans_shrink_index() {
        let mut c = controller(100);
        let mut s = stats_with(80, 10, 0, 10, 0);
        s.evictions = 10;
        s.visited_slots = 1000;
        s.visited_nonempty = 50; // q = 0.05 < 0.2
                                 // capacity ratio = 10/100 = 0.10, not > threshold; sparsity fires.
        let adj = c.maybe_adjust(&s, 4096, 1 << 20, 0.0).unwrap();
        assert_eq!(adj.rule, AdjustRule::ShrinkIndex);
        assert_eq!(adj.index_entries, 2048);
    }

    #[test]
    fn interval_statistics_are_deltas() {
        let mut c = controller(100);
        // First interval: heavy conflicts -> grow.
        let s1 = stats_with(0, 70, 30, 0, 0);
        assert!(c.maybe_adjust(&s1, 1024, 1 << 20, 0.0).is_some());
        // Second interval: all hits; cumulative stats still contain the old
        // conflicts but the delta does not -> no adjustment.
        let mut s2 = s1;
        for _ in 0..100 {
            s2.record(AccessType::Hit);
        }
        assert!(c.maybe_adjust(&s2, 2048, 1 << 20, 0.0).is_none());
    }

    #[test]
    fn bounds_are_respected() {
        let mut c = AdaptiveController::new(AdaptiveParams {
            interval: 10,
            index_bounds: (64, 1024),
            ..AdaptiveParams::default()
        });
        let s = stats_with(0, 5, 5, 0, 0);
        // Already at the max: growing is a no-op, falls through to nothing.
        assert!(c.maybe_adjust(&s, 1024, 1 << 20, 0.0).is_none());
    }

    #[test]
    fn one_rule_per_check() {
        let mut c = controller(10);
        // Both conflict and capacity pressure: only the first rule fires.
        let s = stats_with(0, 0, 5, 5, 0);
        let adj = c.maybe_adjust(&s, 1024, 1 << 20, 0.0).unwrap();
        assert_eq!(adj.rule, AdjustRule::GrowIndex);
        assert_eq!(adj.storage_bytes, 1 << 20, "storage untouched this check");
    }

    #[test]
    fn zero_lower_bounds_never_yield_zero_sizes() {
        // index_bounds.0 == 0 with an aggressive shrink used to clamp the
        // new index size to 0 slots (CuckooIndex::new panics on 0).
        let mut c = AdaptiveController::new(AdaptiveParams {
            interval: 10,
            index_bounds: (0, 1 << 14),
            index_decrease_factor: 1e9,
            ..AdaptiveParams::default()
        });
        let mut s = stats_with(80, 10, 0, 10, 0);
        s.evictions = 10;
        s.visited_slots = 1000;
        s.visited_nonempty = 50; // q = 0.05: sparsity shrink fires
        let adj = c.maybe_adjust(&s, 4096, 1 << 20, 0.0).unwrap();
        assert_eq!(adj.rule, AdjustRule::ShrinkIndex);
        assert!(
            adj.index_entries >= 1,
            "shrunk to {} slots",
            adj.index_entries
        );
    }

    #[test]
    fn zero_storage_lower_bound_never_yields_zero_bytes() {
        let mut c = AdaptiveController::new(AdaptiveParams {
            interval: 10,
            storage_bounds: (0, 4 << 30),
            memory_decrease_factor: 1e12,
            ..AdaptiveParams::default()
        });
        // First check sets the free-fraction baseline; second shrinks.
        let s1 = stats_with(95, 5, 0, 0, 0);
        assert!(c.maybe_adjust(&s1, 1024, 4 << 20, 0.9).is_none());
        let mut s2 = s1;
        for _ in 0..100 {
            s2.record(AccessType::Hit);
        }
        let adj = c.maybe_adjust(&s2, 1024, 4 << 20, 0.9).unwrap();
        assert_eq!(adj.rule, AdjustRule::ShrinkStorage);
        assert!(
            adj.storage_bytes >= 1,
            "shrunk to {} bytes",
            adj.storage_bytes
        );
    }

    /// Extends `s` with one interval of all-hit gets plus shadow counters
    /// (one shadow get per live get, per-policy shadow hits by index).
    fn add_shadow_interval(s: &mut CacheStats, gets: u64, hits: [u64; crate::POLICY_COUNT]) {
        for _ in 0..gets {
            s.record(AccessType::Hit);
        }
        s.shadow_gets += gets;
        for (acc, h) in s.shadow_hits.iter_mut().zip(hits) {
            *acc += h;
        }
    }

    #[test]
    fn policy_switch_needs_two_consecutive_wins() {
        let mut c = AdaptiveController::new(AdaptiveParams {
            interval: 100,
            policy_switching: true,
            ..AdaptiveParams::default()
        });
        c.note_policy(VictimScheme::Full);
        // ALL order: [Full, Temporal, Positional, ExactLru, Lease].
        // Lease's shadow dominates Full's by far more than the margin.
        let mut s = CacheStats::default();
        add_shadow_interval(&mut s, 100, [50, 40, 40, 40, 90]);
        assert!(
            c.maybe_adjust(&s, 1024, 1 << 20, 0.5).is_none(),
            "first winning interval only arms the hysteresis"
        );
        add_shadow_interval(&mut s, 100, [50, 40, 40, 40, 90]);
        let adj = c.maybe_adjust(&s, 1024, 1 << 20, 0.5).unwrap();
        assert_eq!(adj.rule, AdjustRule::SwitchPolicy);
        assert_eq!(adj.policy, Some(VictimScheme::Lease));
        assert_eq!(adj.index_entries, 1024, "switch never resizes");
        assert_eq!(adj.storage_bytes, 1 << 20);
        assert_eq!(c.live_policy(), VictimScheme::Lease);
    }

    #[test]
    fn policy_switching_is_off_by_default() {
        let mut c = controller(100);
        let mut s = CacheStats::default();
        for _ in 0..2 {
            add_shadow_interval(&mut s, 100, [10, 0, 0, 0, 95]);
            assert!(c.maybe_adjust(&s, 1024, 1 << 20, 0.5).is_none());
        }
    }

    #[test]
    fn wins_within_margin_or_interrupted_never_switch() {
        let mut c = AdaptiveController::new(AdaptiveParams {
            interval: 100,
            policy_switching: true,
            switch_margin: 0.10,
            ..AdaptiveParams::default()
        });
        // Within the margin: 0.58 vs 0.50 < 0.10 -> not even armed.
        let mut s = CacheStats::default();
        add_shadow_interval(&mut s, 100, [50, 40, 40, 40, 58]);
        assert!(c.maybe_adjust(&s, 1024, 1 << 20, 0.5).is_none());
        // Clear win arms...
        add_shadow_interval(&mut s, 100, [50, 40, 40, 40, 90]);
        assert!(c.maybe_adjust(&s, 1024, 1 << 20, 0.5).is_none());
        // ...but a different winner next interval disarms: no switch.
        add_shadow_interval(&mut s, 100, [50, 90, 40, 40, 41]);
        assert!(
            c.maybe_adjust(&s, 1024, 1 << 20, 0.5).is_none(),
            "winner changed between intervals: hysteresis must reset"
        );
        // And the new winner still needs its own second win.
        add_shadow_interval(&mut s, 100, [50, 90, 40, 40, 41]);
        let adj = c.maybe_adjust(&s, 1024, 1 << 20, 0.5).unwrap();
        assert_eq!(adj.policy, Some(VictimScheme::Temporal));
    }

    #[test]
    fn non_finite_resize_factors_produce_no_adjustment() {
        for factor in [f64::NAN, f64::INFINITY] {
            let mut c = AdaptiveController::new(AdaptiveParams {
                interval: 10,
                index_increase_factor: factor,
                ..AdaptiveParams::default()
            });
            // Heavy conflicts would normally grow the index; with a
            // degenerate factor the target size is meaningless, so the
            // controller must hold steady rather than jump to 0 or max.
            let s = stats_with(50, 20, 30, 0, 0);
            assert!(
                c.maybe_adjust(&s, 1024, 1 << 20, 0.1).is_none(),
                "factor {factor} produced an adjustment"
            );
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::stats::{AccessType, CacheStats};
    use clampi_prng::prop::check;

    /// Under ANY stream of interval statistics the controller converges:
    /// the number of adjustments it can ever emit is small (monotone
    /// growth phases plus at most one reversal per resource), never
    /// unbounded oscillation.
    #[test]
    fn adjustments_are_bounded_under_arbitrary_stats() {
        check("adaptive controller converges", 64, |g| {
            let intervals = g.vec(1..200usize, |g| {
                (
                    g.range(0..100u64),
                    g.range(0..100u64),
                    g.range(0..100u64),
                    g.range(0..100u64),
                    g.range(0..100u64),
                    g.range(0.0..1.0),
                )
            });
            let mut c = AdaptiveController::new(AdaptiveParams {
                interval: 1,
                index_bounds: (64, 1 << 14),
                storage_bounds: (64 << 10, 64 << 20),
                ..AdaptiveParams::default()
            });
            let mut stats = CacheStats::default();
            let mut iw = 1024usize;
            let mut sw = 1usize << 20;
            let mut adjustments = 0usize;
            let mut grows_i = 0usize;
            let mut grows_s = 0usize;
            for (hits, direct, conflicting, capacity, failed, free) in intervals {
                for _ in 0..hits {
                    stats.record(AccessType::Hit);
                }
                for _ in 0..direct {
                    stats.record(AccessType::Direct);
                }
                for _ in 0..conflicting {
                    stats.record(AccessType::Conflicting);
                }
                for _ in 0..capacity {
                    stats.record(AccessType::Capacity);
                }
                for _ in 0..failed {
                    stats.record(AccessType::Failed);
                }
                stats.evictions += capacity;
                stats.visited_slots += capacity * 16;
                stats.visited_nonempty += capacity * 4;
                if let Some(adj) = c.maybe_adjust(&stats, iw, sw, free) {
                    adjustments += 1;
                    match adj.rule {
                        AdjustRule::GrowIndex => grows_i += 1,
                        AdjustRule::GrowStorage => grows_s += 1,
                        _ => {}
                    }
                    iw = adj.index_entries;
                    sw = adj.storage_bytes;
                }
            }
            // Bounds: each resource can grow at most log2(max/min) times,
            // shrink at most log2(max/min) times, with one reversal each.
            let max_per_resource = 2 * 14 + 2;
            assert!(
                adjustments <= 2 * max_per_resource,
                "{adjustments} adjustments (grows_i={grows_i}, grows_s={grows_s})"
            );
            assert!((64..=1 << 14).contains(&iw));
            assert!((64 << 10..=64 << 20).contains(&sw));
        });
    }
}
