//! CLaMPI — a Caching Layer for MPI-3 RMA `get` operations.
//!
//! Reproduction of *Transparent Caching for RMA Systems* (Di Girolamo,
//! Vella, Hoefler — IPDPS 2017). CLaMPI caches the payloads of remote
//! `get` operations in local memory so that repeated accesses to the same
//! remote data — typical of irregular applications such as graph
//! processing and N-body simulations — are served at local-copy speed
//! instead of network latency.
//!
//! The design follows the paper:
//!
//! - **Gets only** (Sec. II): MPI's epoch model forbids conflicting
//!   put/get in one epoch, so write caching cannot avoid network traffic;
//! - **Variable-size cache entries** (Sec. III-C2) stored contiguously in
//!   one buffer `S_w`, allocated best-fit from an AVL tree of free regions,
//!   avoiding the internal fragmentation of block-based designs;
//! - **Cuckoo-hash index** `I_w` (Sec. III-C1) with `p = 4` universal hash
//!   functions and constant-time lookups; insertion failures are treated as
//!   *conflicting* accesses that evict along the insertion path;
//! - **Weak caching** (Sec. III-D2): inserts may *fail* rather than evict
//!   an unbounded number of entries, so a `get_c` is never slower than the
//!   uncached get by more than a small constant;
//! - **Fragmentation-aware eviction** (Sec. III-D1): victims minimize
//!   `R = R_P · R_T`, the product of a positional (adjacent-free-space)
//!   and a temporal (LRU-like) score;
//! - **Epoch consistency** (Sec. II): entries requested in the current
//!   epoch are `PENDING` and their cache fills happen at the epoch
//!   closure; the *transparent* mode invalidates at every epoch closure,
//!   *always-cache* never, *user-defined* on explicit
//!   [`CachedWindow::invalidate`];
//! - **Online adaptation** (Sec. III-E): the *adaptive* strategy resizes
//!   `|I_w|`/`|S_w|` from runtime statistics, invalidating on each
//!   adjustment.
//!
//! # Quickstart
//!
//! ```
//! use clampi::{CachedWindow, ClampiConfig, Mode, CacheParams};
//! use clampi_datatype::Datatype;
//! use clampi_rma::{run, SimConfig};
//!
//! let reports = run(SimConfig::default(), 2, |p| {
//!     let cfg = ClampiConfig::fixed(Mode::AlwaysCache, CacheParams::default());
//!     let mut win = CachedWindow::create(p, 1 << 20, cfg);
//!     if p.rank() == 1 {
//!         win.local_mut()[..4].copy_from_slice(&[1, 2, 3, 4]);
//!     }
//!     p.barrier();
//!     if p.rank() == 0 {
//!         win.lock_all(p);
//!         let mut buf = [0u8; 4];
//!         win.get(p, &mut buf, 1, 0, &Datatype::bytes(4), 1); // miss
//!         win.flush(p, 1);
//!         win.get(p, &mut buf, 1, 0, &Datatype::bytes(4), 1); // hit!
//!         win.flush(p, 1);
//!         assert_eq!(buf, [1, 2, 3, 4]);
//!         assert_eq!(win.stats().hits, 1);
//!         win.unlock_all(p);
//!     }
//!     p.barrier();
//! });
//! assert_eq!(reports.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod adaptive;
pub mod blockcache;
pub mod cache;
pub mod coherence;
pub mod costs;
pub mod eviction;
pub mod index;
pub mod lease;
pub mod recovery;
pub mod seqlock;
pub mod shard;
pub mod snapshot;
pub mod stats;
pub mod storage;
pub mod sync_shim;
pub mod trace;
pub mod vcache;
pub mod window;

pub use adaptive::{AdaptiveController, AdaptiveParams, AdjustRule, Adjustment};
pub use blockcache::{BlockCacheConfig, BlockCacheStats, BlockCachedWindow};
pub use cache::{CacheParams, EntryState, LayoutSig, Lookup, ResizeEvent, RmaCache};
pub use coherence::CoherenceMode;
pub use costs::CacheCostModel;
pub use eviction::{VictimScheme, POLICY_COUNT};
pub use index::{CuckooIndex, EntryId, GetKey};
pub use lease::LeaseTable;
pub use recovery::RetryPolicy;
pub use shard::ShardedCache;
pub use snapshot::{SnapReq, SnapStamp, SnapshotCtx, SnapshotError, SnapshotInfo};
pub use stats::{AccessType, CacheStats};
pub use trace::{replay, ReplayCosts, ReplayResult, Trace, TraceEvent};
pub use vcache::{PolicyLab, ShadowCache};
pub use window::{CachedWindow, ClampiConfig, Mode};
