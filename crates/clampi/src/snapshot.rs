//! Snapshot-consistent multi-get: a transactional read layer over cached
//! RMA windows.
//!
//! PR 4 gave cached reads *per-entry* freshness (version counters plus the
//! bounded put-notification ring), but a **batch** of gets can still see a
//! torn mix of old and new data: entry A served from the cache at version
//! 3, entry B fetched fresh at version 7, with a writer having touched
//! both in between. This module upgrades version stamps to **validity
//! intervals** and picks one timestamp contained in all of them, so that a
//! batch reflects a single — possibly slightly stale, never torn — moment
//! of the window's history.
//!
//! # How a snapshot is chosen
//!
//! Every write carries a *commit timestamp* from the window-global commit
//! clock ([`clampi_rma::PutRecord::ts`]): strictly increasing across all
//! targets, agreeing with each target's version order. A cache entry (or a
//! fresh fetch) is stamped with the commit state observed while its bytes
//! were read ([`SnapStamp`]); draining the notification ring then bounds
//! the entry's validity interval `[stamp.ts, hi)`, where `hi` is the
//! commit timestamp of the first later write overlapping the entry (`∞` if
//! none is known).
//!
//! [`choose_timestamp`] intersects the intervals of a whole batch: with
//! `L = max stamp.ts` and `H = min hi`, any `T` in `[L, H)` is consistent
//! for every request. The implementation picks the newest such `T` it can
//! *certify*: `min(cap, H − 1)`, where `cap` is the commit clock sampled
//! while draining (a write not seen by the drain must commit after `cap`,
//! so freshness beyond it cannot be promised). Requests whose interval
//! excludes the candidate (`hi ≤ L`) are refetched — through the
//! nonblocking/coalescing miss path — and the intersection is retried.
//!
//! # Abort conditions
//!
//! A validation attempt aborts (and the whole batch retries, bounded by
//! [`SnapshotCtx::max_attempts`]) when
//!
//! - the notification ring **overflowed** past an entry's stamp, so its
//!   interval cannot be bounded, or
//! - the bounded refetch rounds ([`SnapshotCtx::max_rounds`]) fail to
//!   close the intersection under a fast writer.
//!
//! Retry attempts bypass the cache entirely (direct fetches with fresh
//! stamps), so a stale resident entry cannot livelock the batch. A target
//! **fault** mid-batch surfaces as [`SnapshotError::TargetFaulted`]
//! immediately — zero-filled fault bytes must never be folded into a
//! "consistent" snapshot.
//!
//! The algorithm itself lives in [`crate::CachedWindow::multi_get`]; this
//! module holds the types, the reusable scratch context and the pure
//! interval logic (unit-tested in isolation below).

use clampi_rma::PutRecord;
use std::ops::Range;

/// Commit-state stamp of one cached payload: the bytes were read while
/// `target`'s window region was at write `version`, whose commit timestamp
/// was `ts`.
///
/// `exact` distinguishes stamps sampled inside the region read lock
/// (bytes ⟺ stamp, usable as a snapshot interval's lower bound) from
/// conservative pre-read peeks or merged partial fills, which only bound
/// the version from below and force a refetch under [`CachedWindow::multi_get`].
///
/// [`CachedWindow::multi_get`]: crate::CachedWindow::multi_get
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapStamp {
    /// Target-region write version observed with the payload bytes.
    pub version: u64,
    /// Commit timestamp of that version (0 = never written / unknown).
    pub ts: u64,
    /// Whether the stamp describes the bytes exactly (sampled under the
    /// region read lock) rather than conservatively.
    pub exact: bool,
}

impl SnapStamp {
    /// An exact stamp.
    pub fn exact(version: u64, ts: u64) -> Self {
        SnapStamp {
            version,
            ts,
            exact: true,
        }
    }
}

/// One read of a [`crate::CachedWindow::multi_get`] batch: `len` bytes at
/// byte displacement `disp` of `target`'s window region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapReq {
    /// Target rank.
    pub target: u32,
    /// Byte displacement into the target's window region.
    pub disp: usize,
    /// Length in bytes.
    pub len: usize,
}

/// Per-request interval state during validation (scratch, not API).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ReqBound {
    /// Stamp of the bytes currently in the destination slice.
    pub(crate) stamp: SnapStamp,
    /// Exclusive upper bound: commit timestamp of the first known write
    /// overlapping this request after `stamp.version` (`u64::MAX` when no
    /// such write is visible in the ring).
    pub(crate) hi: u64,
}

/// Outcome summary of a successful [`crate::CachedWindow::multi_get`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// The commit timestamp the batch is consistent at.
    pub timestamp: u64,
    /// Requests refetched during validation (beyond the initial gather).
    pub refetched: u64,
    /// Validation attempts aborted (ring overflow / rounds exhausted)
    /// before the one that succeeded.
    pub aborts: u64,
    /// Staleness bound in virtual nanoseconds: the drain-time commit
    /// clock minus the chosen timestamp (0 = provably newest).
    pub staleness_ns: u64,
}

/// Why a [`crate::CachedWindow::multi_get`] could not produce a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// A target faulted mid-batch; its bytes would be zero-filled, which
    /// can never be part of a consistent snapshot. The caller decides
    /// whether to degrade (per-request reads) or propagate.
    TargetFaulted {
        /// The faulted target rank.
        target: u32,
    },
    /// `max_attempts` whole-batch retries were exhausted (sustained ring
    /// overflow or writer pressure).
    RetriesExhausted,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::TargetFaulted { target } => {
                write!(f, "snapshot aborted: target {target} faulted mid-batch")
            }
            SnapshotError::RetriesExhausted => {
                write!(f, "snapshot retries exhausted under writer pressure")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Reusable scratch state for snapshot reads: the staged request list of
/// the `tx_*` API plus every temporary the validation loop needs, so a
/// steady-state `multi_get` allocates nothing.
///
/// Creating (or holding) a context has no effect on the window — the
/// snapshot subsystem is pay-as-you-go, and runs that never call
/// [`crate::CachedWindow::multi_get`] are bit-identical to builds without
/// it.
#[derive(Debug)]
pub struct SnapshotCtx {
    /// Refetch rounds per validation attempt before declaring the attempt
    /// aborted (each round refetches only the requests whose interval
    /// excludes the candidate timestamp).
    pub max_rounds: usize,
    /// Whole-batch attempts before [`SnapshotError::RetriesExhausted`].
    /// Attempts after the first bypass the cache entirely.
    pub max_attempts: usize,
    /// Staged requests of the `tx_get`/`tx_commit` API.
    pub(crate) reqs: Vec<SnapReq>,
    /// Staged destination buffer of the `tx_get`/`tx_commit` API.
    pub(crate) buf: Vec<u8>,
    /// Per-request interval state (parallel to the batch).
    pub(crate) bounds: Vec<ReqBound>,
    /// Drain scratch for put-notification records.
    pub(crate) records: Vec<PutRecord>,
    /// Involved targets, deduplicated.
    pub(crate) targets: Vec<u32>,
    /// Indices of requests to refetch in the current round.
    pub(crate) refetch: Vec<usize>,
}

impl Default for SnapshotCtx {
    fn default() -> Self {
        SnapshotCtx {
            max_rounds: 4,
            max_attempts: 4,
            reqs: Vec::new(),
            buf: Vec::new(),
            bounds: Vec::new(),
            records: Vec::new(),
            targets: Vec::new(),
            refetch: Vec::new(),
        }
    }
}

impl SnapshotCtx {
    /// A context with the default retry bounds.
    pub fn new() -> Self {
        SnapshotCtx::default()
    }

    /// The transaction buffer: after a successful
    /// [`crate::CachedWindow::tx_commit`], each staged read's payload sits
    /// at the range its `tx_get` returned.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Clears the staged transaction (see [`crate::CachedWindow::tx_begin`]).
    pub(crate) fn begin(&mut self) {
        self.reqs.clear();
        self.buf.clear();
    }

    /// Stages one read and reserves its bytes in the transaction buffer,
    /// returning the range `tx_commit` will fill.
    pub(crate) fn stage(&mut self, target: u32, disp: usize, len: usize) -> Range<usize> {
        let start = self.buf.len();
        self.reqs.push(SnapReq { target, disp, len });
        self.buf.resize(start + len, 0);
        start..start + len
    }
}

/// Intersects the batch's validity intervals and picks the newest commit
/// timestamp certifiable from the drains.
///
/// `cap` is the minimum over all drained targets of the commit clock
/// sampled inside the ring lock: any write invisible to the drains
/// commits strictly after it, so no `T > cap` can be certified. Every
/// exact stamp was read before its target's drain, hence `stamp.ts ≤ cap`
/// and the chosen `T = min(cap, H − 1)` always satisfies `T ≥ L`.
///
/// Returns `Ok(T)` when the intersection `[L, H)` is non-empty, else
/// `Err(L)` — the caller refetches every request with `hi ≤ L` (their
/// intervals ended before the newest request began) and retries.
pub(crate) fn choose_timestamp(bounds: &[ReqBound], cap: u64) -> Result<u64, u64> {
    let lo = bounds.iter().map(|b| b.stamp.ts).max().unwrap_or(0);
    let hi = bounds.iter().map(|b| b.hi).min().unwrap_or(u64::MAX);
    if hi > lo {
        // max() is defensive: with correct drains cap ≥ lo always holds.
        Ok(lo.max(cap.min(hi - 1)))
    } else {
        Err(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(ts: u64, hi: u64) -> ReqBound {
        ReqBound {
            stamp: SnapStamp::exact(ts, ts),
            hi,
        }
    }

    #[test]
    fn empty_batch_is_consistent_at_the_cap() {
        assert_eq!(choose_timestamp(&[], 42), Ok(42));
    }

    #[test]
    fn unbounded_intervals_pick_the_drain_cap() {
        // No later writes known: the snapshot is as fresh as the drains
        // can certify, never fresher.
        let bounds = [b(3, u64::MAX), b(7, u64::MAX)];
        assert_eq!(choose_timestamp(&bounds, 100), Ok(100));
    }

    #[test]
    fn bounded_interval_caps_at_h_minus_one() {
        // Request stamped at 3 was overwritten at 10: certifiable range
        // is [7, 10), newest is 9 even though the clock reads 100.
        let bounds = [b(3, 10), b(7, u64::MAX)];
        assert_eq!(choose_timestamp(&bounds, 100), Ok(9));
    }

    #[test]
    fn cap_below_h_wins() {
        let bounds = [b(3, 50), b(7, u64::MAX)];
        assert_eq!(choose_timestamp(&bounds, 20), Ok(20));
    }

    #[test]
    fn touching_intervals_are_still_consistent() {
        // hi == lo + 1 leaves exactly one timestamp: T == lo.
        let bounds = [b(3, 8), b(7, u64::MAX)];
        assert_eq!(choose_timestamp(&bounds, 100), Ok(7));
    }

    #[test]
    fn disjoint_intervals_report_the_bar_to_clear() {
        // Entry invalidated at 5 can never coexist with one created at 7:
        // the caller must refetch everything with hi ≤ 7.
        let bounds = [b(3, 5), b(7, u64::MAX)];
        assert_eq!(choose_timestamp(&bounds, 100), Err(7));
    }

    #[test]
    fn defensive_floor_never_returns_below_the_newest_stamp() {
        // cap < lo cannot happen with correct drains; the floor keeps the
        // result inside the intersection anyway.
        let bounds = [b(9, u64::MAX)];
        assert_eq!(choose_timestamp(&bounds, 2), Ok(9));
    }

    #[test]
    fn stage_packs_requests_back_to_back() {
        let mut cx = SnapshotCtx::new();
        cx.begin();
        assert_eq!(cx.stage(1, 0, 8), 0..8);
        assert_eq!(cx.stage(2, 16, 4), 8..12);
        assert_eq!(cx.reqs.len(), 2);
        assert_eq!(cx.buf.len(), 12);
        cx.begin();
        assert!(cx.reqs.is_empty() && cx.buf.is_empty());
    }
}

/// Model checks of the snapshot protocol, compiled only under
/// `--cfg clampi_mc` (the `mc-test` CI stage). The harness drives the
/// *shipped* pieces — [`clampi_rma::CommitClock`] for stamping and
/// [`choose_timestamp`] for interval intersection — through a miniature
/// two-target window: a writer committing one put per target races a
/// reader gathering, draining and validating a two-request batch. The
/// checked property is the issue's #4: on every schedule, the chosen
/// timestamp lies inside every request's validity interval; and the
/// refetch-on-`Err` loop is bounded.
#[cfg(all(test, clampi_mc))]
mod mc_tests {
    use super::*;
    use clampi_rma::CommitClock;
    use std::sync::Arc;

    type Ring = clampi_mc::Mutex<Vec<(u64, u64)>>;

    /// `note_put`'s essential shape: version bump + commit stamp, one
    /// atomic step under the target's ring lock.
    fn put(clock: &CommitClock, ring: &Ring) {
        let mut r = ring.lock();
        let ts = clock.stamp(0);
        let version = r.len() as u64 + 1;
        r.push((version, ts));
    }

    /// The gather side: bytes + stamp sampled under the region lock
    /// (modelled by the ring lock — both sides of the simulator take it).
    fn read_stamp(ring: &Ring) -> SnapStamp {
        let r = ring.lock();
        match r.last() {
            Some(&(version, ts)) => SnapStamp::exact(version, ts),
            None => SnapStamp::exact(0, 0),
        }
    }

    /// The drain side: `hi` (first write after the stamp) and the commit
    /// clock cap, both sampled inside the ring lock — the discipline
    /// `try_drain_notifications` ships.
    fn drain(clock: &CommitClock, ring: &Ring, stamp: SnapStamp) -> (u64, u64) {
        let r = ring.lock();
        let cap = clock.read();
        let hi = r
            .iter()
            .find(|(version, _)| *version > stamp.version)
            .map(|&(_, ts)| ts)
            .unwrap_or(u64::MAX);
        (hi, cap)
    }

    fn snapshot_body() {
        let clock = Arc::new(CommitClock::new());
        let rings: [Arc<Ring>; 2] = [
            Arc::new(clampi_mc::Mutex::with_label(Vec::new(), "ring0")),
            Arc::new(clampi_mc::Mutex::with_label(Vec::new(), "ring1")),
        ];
        let (clock_w, r0, r1) = (clock.clone(), rings[0].clone(), rings[1].clone());
        let writer = clampi_mc::spawn(move || {
            put(&clock_w, &r0);
            put(&clock_w, &r1);
        });
        // multi_get's validation loop, refetching everything on Err. One
        // round per writer put can fail, plus the final success: with a
        // quiescent writer a fresh gather always yields hi == MAX (the
        // stamp *is* the newest ring entry), which intersects.
        let mut attempts = 0;
        loop {
            attempts += 1;
            assert!(attempts <= 3, "refetch rounds must be bounded");
            let stamps = [read_stamp(&rings[0]), read_stamp(&rings[1])];
            let (h0, c0) = drain(&clock, &rings[0], stamps[0]);
            let (h1, c1) = drain(&clock, &rings[1], stamps[1]);
            let cap = c0.min(c1);
            let bounds = [
                ReqBound {
                    stamp: stamps[0],
                    hi: h0,
                },
                ReqBound {
                    stamp: stamps[1],
                    hi: h1,
                },
            ];
            match choose_timestamp(&bounds, cap) {
                Ok(t) => {
                    for b in &bounds {
                        assert!(
                            b.stamp.ts <= t && t < b.hi,
                            "chosen timestamp {t} outside validity interval [{}, {})",
                            b.stamp.ts,
                            b.hi
                        );
                    }
                    break;
                }
                Err(_bar) => continue,
            }
        }
        writer.join();
    }

    #[test]
    fn mc_snapshot_timestamp_inside_every_validity_interval() {
        let report = clampi_mc::check(clampi_mc::Config::smoke(), snapshot_body);
        report.assert_pass();
    }
}
