//! CPU-time model for cache-management activities.
//!
//! The paper's Fig. 7 decomposes a `get_c` into lookup, eviction, and data
//! copy phases and shows that the management overhead stays a small,
//! roughly constant fraction of the uncached get latency. In the simulator,
//! cache management is charged to the initiating rank's virtual clock as
//! *CPU* time (non-overlappable — the rank's core executes it), while data
//! copies use the shared memcpy model from
//! [`clampi_rma::NetModel::memcpy_cost`].
//!
//! Defaults are calibrated so that a full hit at 4 KiB lands near the
//! paper's "up to 9.3x faster than foMPI" and the miss-side overhead stays
//! around the 25 % line drawn in Fig. 7.

/// Nanosecond costs of the individual cache-management activities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheCostModel {
    /// One index lookup (constant: p probes of the Cuckoo table).
    pub lookup_ns: f64,
    /// Per displacement step of a Cuckoo insertion.
    pub insert_step_ns: f64,
    /// Per index slot visited by the victim-selection scan (includes the
    /// score computation for non-empty slots).
    pub evict_visit_ns: f64,
    /// One best-fit allocation or free in the storage AVL tree.
    pub alloc_ns: f64,
    /// Fixed bookkeeping per epoch-close hook invocation.
    pub epoch_hook_ns: f64,
    /// Fixed CPU cost of one cache data copy (mirrors
    /// [`clampi_rma::NetModel::memcpy_base_ns`]).
    pub memcpy_base_ns: f64,
    /// Per-byte CPU cost of cache data copies.
    pub memcpy_per_byte_ns: f64,
    /// One shadow-cache slot inspection in the policy lab
    /// ([`crate::vcache`]): a tag compare plus a branch over a ~32-byte
    /// record in a dense array — far cheaper than `evict_visit_ns`,
    /// which prices a live-index probe with its f64 score computation.
    /// Shadow work is *never* charged to the live virtual clock (the lab
    /// is observation-only); this constant exists so benches can price
    /// the lab's overhead from
    /// [`crate::CacheStats::shadow_slot_visits`].
    pub shadow_visit_ns: f64,
}

impl Default for CacheCostModel {
    fn default() -> Self {
        CacheCostModel {
            lookup_ns: 60.0,
            insert_step_ns: 35.0,
            evict_visit_ns: 18.0,
            alloc_ns: 90.0,
            epoch_hook_ns: 50.0,
            memcpy_base_ns: 30.0,
            memcpy_per_byte_ns: 0.05,
            shadow_visit_ns: 2.0,
        }
    }
}

impl CacheCostModel {
    /// A zero-cost model (for unit tests that assert pure algorithmic
    /// behaviour without timing).
    pub fn free() -> Self {
        CacheCostModel {
            lookup_ns: 0.0,
            insert_step_ns: 0.0,
            evict_visit_ns: 0.0,
            alloc_ns: 0.0,
            epoch_hook_ns: 0.0,
            memcpy_base_ns: 0.0,
            memcpy_per_byte_ns: 0.0,
            shadow_visit_ns: 0.0,
        }
    }

    /// A model whose copy costs mirror the given network model's local
    /// memcpy parameters (keeps cache copies and simulator copies on the
    /// same memory-bandwidth assumption).
    pub fn matching(netmodel: &clampi_rma::NetModel) -> Self {
        CacheCostModel {
            memcpy_base_ns: netmodel.memcpy_base_ns,
            memcpy_per_byte_ns: netmodel.memcpy_per_byte_ns,
            ..CacheCostModel::default()
        }
    }

    /// CPU cost of copying `size` bytes between the cache and a user buffer.
    pub fn memcpy_cost(&self, size: usize) -> f64 {
        if size == 0 {
            0.0
        } else {
            self.memcpy_base_ns + size as f64 * self.memcpy_per_byte_ns
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_hit_cost_is_small_vs_remote_get() {
        // Hit = lookup + 4 KiB memcpy; remote = o + L + size*G + sync.
        let c = CacheCostModel::default();
        let m = clampi_rma::NetModel::default();
        let hit = c.lookup_ns + m.memcpy_cost(4096);
        let remote = m
            .transfer_cost_at(clampi_rma::Distance::SameGroup, 4096, 1)
            .total()
            + m.sync_cost();
        let speedup = remote / hit;
        assert!((4.0..12.0).contains(&speedup), "speedup = {speedup}");
    }

    #[test]
    fn free_model_charges_nothing() {
        let c = CacheCostModel::free();
        assert_eq!(c.lookup_ns, 0.0);
        assert_eq!(c.alloc_ns, 0.0);
    }
}

#[cfg(test)]
mod matching_tests {
    use super::*;

    #[test]
    fn matching_mirrors_the_netmodel_memcpy() {
        let m = clampi_rma::NetModel::default();
        let c = CacheCostModel::matching(&m);
        assert_eq!(c.memcpy_base_ns, m.memcpy_base_ns);
        assert_eq!(c.memcpy_per_byte_ns, m.memcpy_per_byte_ns);
        assert_eq!(c.memcpy_cost(1000), m.memcpy_cost(1000));
        assert_eq!(c.memcpy_cost(0), 0.0);
    }
}
