//! Planted-mutant fixtures: the checker is only trusted because it provably
//! catches known-broken variants of the protocols it guards, mirroring the
//! xlint and perf-gate fixture discipline. `ci.sh`'s `mc-test` stage runs
//! this suite first and refuses to run the real checks if any mutant
//! escapes.
//!
//! The three planted mutants from the issue:
//! 1. seqlock writer drops its Release fence,
//! 2. seqlock reader loads the seq counter Relaxed (instead of Acquire),
//! 3. commit timestamps stamped outside the ring lock.

use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};
use std::sync::Arc;

use clampi_mc as mc;

// ---------------------------------------------------------------------------
// Transliterated seqlock front (shard.rs recipe), with mutation switches.
// The shipped code itself is model-checked by `clampi`'s `mc_*` unit tests
// under `--cfg clampi_mc`; these transliterations exist so the checker's own
// mutant-catching power is validated in every tier-1 run.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
struct SeqlockVariant {
    writer_release_fence: bool,
    reader_acquire_load: bool,
}

const CORRECT: SeqlockVariant = SeqlockVariant {
    writer_release_fence: true,
    reader_acquire_load: true,
};

fn seqlock_body(v: SeqlockVariant) {
    let seq = Arc::new(mc::TrackedU64::with_label(0, "seq"));
    let d0 = Arc::new(mc::TrackedU64::with_label(0, "d0"));
    let d1 = Arc::new(mc::TrackedU64::with_label(0, "d1"));
    let (seq_w, d0_w, d1_w) = (seq.clone(), d0.clone(), d1.clone());
    let writer = mc::spawn(move || {
        let s = seq_w.load(Relaxed);
        seq_w.store(s + 1, Relaxed);
        if v.writer_release_fence {
            mc::fence(Release); // pairs with the reader's Acquire fence
        }
        d0_w.store(2, Relaxed);
        d1_w.store(2, Relaxed);
        seq_w.store(s + 2, Release);
    });
    // Reader: one optimistic attempt of the shard.rs recipe.
    let s1 = seq.load(if v.reader_acquire_load {
        Acquire
    } else {
        Relaxed
    });
    if s1.is_multiple_of(2) {
        let a = d0.load(Relaxed);
        let b = d1.load(Relaxed);
        mc::fence(Acquire); // pairs with the writer's Release fence
        let s2 = seq.load(Relaxed);
        if s2 == s1 {
            assert_eq!(a, b, "torn read escaped seqlock validation");
        }
    }
    writer.join();
    assert_eq!(
        seq.load(Relaxed) % 2,
        0,
        "writer counter parity not restored"
    );
}

#[test]
fn correct_seqlock_passes_full_exploration() {
    let report = mc::check(mc::Config::default(), || seqlock_body(CORRECT));
    report.assert_pass();
    assert!(!report.truncated, "no bound: exploration must be complete");
}

#[test]
fn mutant_missing_release_fence_caught() {
    let report = mc::check(mc::Config::default(), || {
        seqlock_body(SeqlockVariant {
            writer_release_fence: false,
            ..CORRECT
        })
    });
    let cx = report.expect_fail();
    assert!(cx.message.contains("torn read"), "got: {}", cx.message);
}

#[test]
fn mutant_relaxed_seq_load_caught() {
    let report = mc::check(mc::Config::default(), || {
        seqlock_body(SeqlockVariant {
            reader_acquire_load: false,
            ..CORRECT
        })
    });
    let cx = report.expect_fail();
    assert!(cx.message.contains("torn read"), "got: {}", cx.message);
}

#[test]
fn mutants_still_caught_at_smoke_bounds() {
    // The CI stage runs with Config::smoke() (preemption bound 3 unless
    // CLAMPI_MC_FULL=1); the planted mutants must not need more switches.
    let cfg = mc::Config::default().with_preemption_bound(Some(3));
    mc::check(cfg.clone(), || {
        seqlock_body(SeqlockVariant {
            writer_release_fence: false,
            ..CORRECT
        })
    })
    .expect_fail();
    mc::check(cfg, || {
        seqlock_body(SeqlockVariant {
            reader_acquire_load: false,
            ..CORRECT
        })
    })
    .expect_fail();
}

#[test]
fn preemption_bound_zero_is_too_weak_and_says_so() {
    // Run-to-block scheduling cannot overlap reader and writer, so the
    // fence mutant escapes — but the report is marked truncated, which is
    // exactly the soundness caveat documented in INTERNALS.md.
    let report = mc::check(mc::Config::default().with_preemption_bound(Some(0)), || {
        seqlock_body(SeqlockVariant {
            writer_release_fence: false,
            ..CORRECT
        })
    });
    assert!(report.passed(), "bound 0 cannot interleave the protocols");
    assert!(report.truncated, "the bound must be reported as truncating");
}

// ---------------------------------------------------------------------------
// Transliterated commit-clock stamping (window.rs note_put recipe).
// ---------------------------------------------------------------------------

fn commit_body(stamp_inside_lock: bool) {
    let clock = Arc::new(mc::TrackedU64::with_label(0, "commit_ts"));
    let ring = Arc::new(mc::Mutex::with_label(Vec::<(u64, u64)>::new(), "ring"));

    let stamp = |clock: &mc::TrackedU64| -> u64 {
        // note_put's shape: monotone bump folding in a wall-clock floor
        // (here constant 0, which reduces to cc + 1).
        clock
            .fetch_update(Relaxed, Relaxed, |cc| Some(cc + 1))
            .map(|cc| cc + 1)
            .unwrap_or(0)
    };

    let mut writers = Vec::new();
    for _ in 0..2 {
        let clock = clock.clone();
        let ring = ring.clone();
        writers.push(mc::spawn(move || {
            if stamp_inside_lock {
                let mut r = ring.lock();
                let ts = stamp(&clock);
                let version = r.len() as u64 + 1;
                r.push((version, ts));
            } else {
                let ts = stamp(&clock); // MUTANT: ts taken before the lock
                let mut r = ring.lock();
                let version = r.len() as u64 + 1;
                r.push((version, ts));
            }
        }));
    }
    for w in writers {
        w.join();
    }
    let r = ring.lock();
    for pair in r.windows(2) {
        assert!(
            pair[1].1 > pair[0].1,
            "commit ts order diverged from version order: {:?}",
            *r
        );
    }
}

#[test]
fn correct_commit_stamping_passes() {
    let report = mc::check(mc::Config::default(), || commit_body(true));
    report.assert_pass();
    assert!(!report.truncated);
}

#[test]
fn mutant_ts_stamped_outside_lock_caught() {
    let report = mc::check(mc::Config::default(), || commit_body(false));
    let cx = report.expect_fail();
    assert!(
        cx.message.contains("diverged from version order"),
        "got: {}",
        cx.message
    );
}

// ---------------------------------------------------------------------------
// Schedule replay (satellite): a failing exploration's schedule string, fed
// back in, reproduces the identical counterexample trace.
// ---------------------------------------------------------------------------

#[test]
fn replay_reproduces_identical_counterexample() {
    let mutant = || {
        seqlock_body(SeqlockVariant {
            writer_release_fence: false,
            ..CORRECT
        })
    };
    let explored = mc::check(mc::Config::default(), mutant);
    let cx = explored.expect_fail().clone();

    let replayed = mc::check(mc::Config::default().with_schedule(&cx.schedule), mutant);
    assert_eq!(replayed.executions, 1);
    let cx2 = replayed.expect_fail();
    assert_eq!(cx2.message, cx.message, "replay diverged in failure");
    assert_eq!(cx2.trace, cx.trace, "replay diverged in trace");
    assert_eq!(cx2.schedule, cx.schedule);
}

#[test]
fn foreign_schedule_reports_mismatch() {
    let report = mc::check(mc::Config::default().with_schedule("t0.t9.r4"), || {
        seqlock_body(CORRECT)
    });
    assert!(
        matches!(report.outcome, mc::Outcome::ScheduleMismatch(_)),
        "got: {:?}",
        report.outcome
    );
}
