//! Litmus tests pinning down the checker's weak-memory semantics: classic
//! shapes must allow exactly the behaviors the C11 model allows.

use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};
use std::sync::Arc;

use clampi_mc as mc;

fn cfg() -> mc::Config {
    mc::Config::default()
}

#[test]
fn mp_release_acquire_passes() {
    // Message passing with a Release store / Acquire load pair: the payload
    // must be visible once the flag is observed.
    let report = mc::check(cfg(), || {
        let data = Arc::new(mc::TrackedU64::with_label(0, "data"));
        let flag = Arc::new(mc::TrackedU64::with_label(0, "flag"));
        let (d2, f2) = (data.clone(), flag.clone());
        let t = mc::spawn(move || {
            d2.store(42, Relaxed);
            f2.store(1, Release);
        });
        if flag.load(Acquire) == 1 {
            assert_eq!(data.load(Relaxed), 42, "payload invisible after flag");
        }
        t.join();
    });
    report.assert_pass();
    assert!(!report.truncated);
}

#[test]
fn mp_all_relaxed_fails() {
    // Without release/acquire the stale payload is observable.
    let report = mc::check(cfg(), || {
        let data = Arc::new(mc::TrackedU64::with_label(0, "data"));
        let flag = Arc::new(mc::TrackedU64::with_label(0, "flag"));
        let (d2, f2) = (data.clone(), flag.clone());
        let t = mc::spawn(move || {
            d2.store(42, Relaxed);
            f2.store(1, Relaxed);
        });
        if flag.load(Relaxed) == 1 {
            assert_eq!(data.load(Relaxed), 42, "stale payload after flag");
        }
        t.join();
    });
    let cx = report.expect_fail();
    assert!(cx.message.contains("stale payload"), "got: {}", cx.message);
    assert!(!cx.schedule.is_empty());
}

#[test]
fn mp_fence_pair_passes() {
    // Same shape but synchronized through a Release fence before a Relaxed
    // flag store and an Acquire fence after a Relaxed flag load — exactly the
    // seqlock recipe's fence discipline.
    let report = mc::check(cfg(), || {
        let data = Arc::new(mc::TrackedU64::with_label(0, "data"));
        let flag = Arc::new(mc::TrackedU64::with_label(0, "flag"));
        let (d2, f2) = (data.clone(), flag.clone());
        let t = mc::spawn(move || {
            d2.store(42, Relaxed);
            mc::fence(Release); // pairs with the reader's Acquire fence
            f2.store(1, Relaxed);
        });
        if flag.load(Relaxed) == 1 {
            mc::fence(Acquire); // pairs with the writer's Release fence
            assert_eq!(data.load(Relaxed), 42, "fence pair failed to publish");
        }
        t.join();
    });
    report.assert_pass();
}

#[test]
fn store_buffering_relaxed_observes_both_zero() {
    // SB with Relaxed accesses: r0 == 0 && r1 == 0 is a legal weak behavior,
    // so asserting it never happens must fail.
    let report = mc::check(cfg(), || {
        let x = Arc::new(mc::TrackedU64::with_label(0, "x"));
        let y = Arc::new(mc::TrackedU64::with_label(0, "y"));
        let (x2, y2) = (x.clone(), y.clone());
        let res = Arc::new(mc::Mutex::new((u64::MAX, u64::MAX)));
        let res2 = res.clone();
        let t = mc::spawn(move || {
            x2.store(1, Relaxed);
            res2.lock().0 = y2.load(Relaxed);
        });
        y.store(1, Relaxed);
        let r1 = x.load(Relaxed);
        t.join();
        let r0 = res.lock().0;
        assert!(!(r0 == 0 && r1 == 0), "store buffering observed");
    });
    report.expect_fail();
}

#[test]
fn store_buffering_seqcst_forbids_both_zero() {
    use std::sync::atomic::Ordering::SeqCst; // SeqCst litmus: total order forbids 0/0
    let report = mc::check(cfg(), || {
        let x = Arc::new(mc::TrackedU64::with_label(0, "x"));
        let y = Arc::new(mc::TrackedU64::with_label(0, "y"));
        let (x2, y2) = (x.clone(), y.clone());
        let res = Arc::new(mc::Mutex::new((u64::MAX, u64::MAX)));
        let res2 = res.clone();
        let t = mc::spawn(move || {
            x2.store(1, SeqCst); // SeqCst store: publishes into the total order
            res2.lock().0 = y2.load(SeqCst); // SeqCst load: must see the order
        });
        y.store(1, SeqCst); // SeqCst store (other side)
        let r1 = x.load(SeqCst); // SeqCst load (other side)
        t.join();
        let r0 = res.lock().0;
        assert!(!(r0 == 0 && r1 == 0), "SB under SeqCst must forbid 0/0");
    });
    report.assert_pass();
}

#[test]
fn read_read_coherence_holds() {
    // A thread may not read an older store after a newer one (same cell).
    let report = mc::check(cfg(), || {
        let x = Arc::new(mc::TrackedU64::with_label(0, "x"));
        let x2 = x.clone();
        let t = mc::spawn(move || {
            x2.store(1, Relaxed);
            x2.store(2, Relaxed);
        });
        let a = x.load(Relaxed);
        let b = x.load(Relaxed);
        t.join();
        assert!(!(a == 2 && b == 1), "read-read coherence violated");
        assert!(!(a == 1 && b == 0), "read-read coherence violated");
    });
    report.assert_pass();
}

#[test]
fn rmw_reads_latest_and_is_atomic() {
    // Two concurrent fetch_adds never lose an increment.
    let report = mc::check(cfg(), || {
        let x = Arc::new(mc::TrackedU64::with_label(0, "x"));
        let x2 = x.clone();
        let t = mc::spawn(move || {
            x2.fetch_add(1, Relaxed);
        });
        x.fetch_add(1, Relaxed);
        t.join();
        assert_eq!(x.load(Relaxed), 2, "lost increment");
    });
    report.assert_pass();
}

#[test]
fn release_sequence_through_rmw() {
    // Release store, then a Relaxed RMW by another thread: an Acquire load
    // that reads the RMW still synchronizes with the original release.
    let report = mc::check(cfg(), || {
        let data = Arc::new(mc::TrackedU64::with_label(0, "data"));
        let flag = Arc::new(mc::TrackedU64::with_label(0, "flag"));
        let (d2, f2) = (data.clone(), flag.clone());
        let (d3, f3) = (data.clone(), flag.clone());
        let t1 = mc::spawn(move || {
            d2.store(7, Relaxed);
            f2.store(1, Release);
        });
        let t2 = mc::spawn(move || {
            let _ = f3.fetch_update(Relaxed, Relaxed, |v| if v == 1 { Some(2) } else { None });
            let _ = d3;
        });
        if flag.load(Acquire) == 2 {
            assert_eq!(data.load(Relaxed), 7, "release sequence broken by RMW");
        }
        t1.join();
        t2.join();
    });
    report.assert_pass();
}

#[test]
fn mutex_provides_mutual_exclusion_and_hb() {
    let report = mc::check(cfg(), || {
        let n = Arc::new(mc::Mutex::with_label(0u64, "n"));
        let n2 = n.clone();
        let t = mc::spawn(move || {
            let mut g = n2.lock();
            *g += 1;
        });
        {
            let mut g = n.lock();
            *g += 1;
        }
        t.join();
        assert_eq!(*n.lock(), 2);
    });
    report.assert_pass();
}

#[test]
fn abba_deadlock_detected() {
    let report = mc::check(cfg(), || {
        let a = Arc::new(mc::Mutex::with_label(0u64, "a"));
        let b = Arc::new(mc::Mutex::with_label(0u64, "b"));
        let (a2, b2) = (a.clone(), b.clone());
        let t = mc::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let _gb = b.lock();
        let _ga = a.lock();
        drop(_ga);
        drop(_gb);
        t.join();
    });
    let cx = report.expect_fail();
    assert!(cx.message.contains("deadlock"), "got: {}", cx.message);
}

#[test]
fn fallback_mode_without_checker_behaves_like_std() {
    // Outside check() every primitive degrades to std semantics.
    let x = mc::TrackedU64::new(5);
    assert_eq!(x.load(Relaxed), 5);
    x.store(6, Release);
    assert_eq!(x.fetch_add(4, Relaxed), 6);
    assert_eq!(x.fetch_update(Relaxed, Relaxed, |v| Some(v * 2)), Ok(10));
    assert_eq!(x.load(Acquire), 20);
    mc::fence(Acquire); // xlint: allow(no-bare-fence) exercising the std fallback, nothing to pair

    let m = Arc::new(mc::Mutex::new(0u64));
    let m2 = m.clone();
    let t = mc::spawn(move || {
        *m2.lock() += 1;
    });
    assert!(t.tid().is_none(), "no virtual tid outside an exploration");
    t.join();
    assert_eq!(*m.lock(), 1);
}

#[test]
fn schedule_roundtrip_via_env_format() {
    // The CLAMPI_MC_SCHEDULE string printed on failure parses back into the
    // same decisions: replaying the failure's schedule fails identically.
    let body = || {
        let data = Arc::new(mc::TrackedU64::with_label(0, "data"));
        let flag = Arc::new(mc::TrackedU64::with_label(0, "flag"));
        let (d2, f2) = (data.clone(), flag.clone());
        let t = mc::spawn(move || {
            d2.store(42, Relaxed);
            f2.store(1, Relaxed);
        });
        if flag.load(Relaxed) == 1 {
            assert_eq!(data.load(Relaxed), 42, "stale payload after flag");
        }
        t.join();
    };
    let first = mc::check(cfg(), body);
    let cx = first.expect_fail().clone();
    let replay = mc::check(cfg().with_schedule(&cx.schedule), body);
    let cx2 = replay.expect_fail();
    assert_eq!(replay.executions, 1, "replay must be a single execution");
    assert_eq!(cx2.trace, cx.trace);
    assert_eq!(cx2.message, cx.message);
}

#[test]
fn exploration_is_deterministic() {
    let body = || {
        let x = Arc::new(mc::TrackedU64::with_label(0, "x"));
        let x2 = x.clone();
        let t = mc::spawn(move || x2.store(1, Relaxed));
        let v = x.load(Relaxed);
        t.join();
        assert_eq!(v, 0, "deliberately flaky property");
    };
    let a = mc::check(cfg(), body);
    let b = mc::check(cfg(), body);
    let (ca, cb) = (a.expect_fail(), b.expect_fail());
    assert_eq!(ca.schedule, cb.schedule);
    assert_eq!(ca.trace, cb.trace);
    assert_eq!(a.executions, b.executions);
}
