//! `clampi-mc` — an in-tree, dependency-free concurrency model checker.
//!
//! The checker exhaustively explores thread interleavings (and, under the
//! weak-memory model, which coherent store each load observes) of a small
//! closed program built from:
//!
//! - [`TrackedU64`] — an atomic cell that records its modification order and
//!   per-access ordering metadata,
//! - [`fence`] — release/acquire/SeqCst fences with loom-style vector-clock
//!   semantics,
//! - [`Mutex`] — a scheduler-aware lock contributing happens-before edges,
//! - [`spawn`]/[`JoinHandle`] — virtual threads on a cooperative scheduler.
//!
//! Outside an exploration every primitive degrades to its `std` counterpart
//! with zero behavioral difference, which is what the `clampi::sync_shim`
//! facade relies on: shipped protocol code (the seqlock front, the snapshot
//! commit clock) is compiled onto these types under `--cfg clampi_mc` and
//! onto plain `std::sync::atomic` otherwise.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};
//!
//! // Message passing: the Release store + Acquire load pair makes the
//! // payload visible; weaken either ordering and the assert fires.
//! let report = clampi_mc::check(clampi_mc::Config::default(), || {
//!     let data = Arc::new(clampi_mc::TrackedU64::new(0));
//!     let flag = Arc::new(clampi_mc::TrackedU64::new(0));
//!     let (d2, f2) = (data.clone(), flag.clone());
//!     let t = clampi_mc::spawn(move || {
//!         d2.store(42, Relaxed);
//!         f2.store(1, Release);
//!     });
//!     if flag.load(Acquire) == 1 {
//!         assert_eq!(data.load(Relaxed), 42);
//!     }
//!     t.join();
//! });
//! report.assert_pass();
//! ```
//!
//! Failures print a `CLAMPI_MC_SCHEDULE` string; setting that variable (or
//! [`Config::schedule`]) replays the exact counterexample, mirroring how
//! `CLAMPI_PROP_SEED` replays property-test failures.

mod clock;
mod explore;
mod rt;
pub mod shim;

pub use clock::VClock;
pub use explore::{check, Config, Counterexample, Outcome, Report};
pub use rt::{fence, spawn, JoinHandle, Mutex, MutexGuard, TrackedU64};
