//! DFS schedule exploration with DPOR-lite pruning.
//!
//! The explorer enumerates executions of the checked body. Each execution is
//! guided by a stack of decision nodes: a *thread* node per scheduling step
//! (which enabled virtual thread moves) and a *read* node per load with more
//! than one coherent store to observe. After an execution completes, the
//! deepest node with an unexplored alternative is flipped and everything
//! below it is rebuilt by re-running the (deterministic) prefix.
//!
//! Pruning:
//! - **Persistent sets**: each node's backtrack set is the full enabled set
//!   (the maximal persistent set). Computed smaller persistent sets are
//!   famously unsound around blocking operations (a lock-acquire race hides
//!   behind the unlock that sits happens-before-between the two acquires,
//!   so last-dependent-step backtracking misses ABBA deadlocks); the
//!   conservative choice keeps every reachable state reachable.
//! - **Sleep sets** (Godefroid): a fully-explored choice is put to sleep for
//!   its sibling branches and woken only when a dependent operation
//!   executes; a state whose enabled threads are all asleep is pruned. This
//!   is where the partial-order reduction actually comes from — sleep sets
//!   skip redundant orderings of independent steps without pruning any
//!   reachable state.
//! - **Preemption bound** (`Config::preemption_bound`): alternatives that
//!   would preempt a still-enabled running thread beyond the bound are
//!   skipped and the report is marked `truncated`.
//!
//! Every decision sequence serializes to a `CLAMPI_MC_SCHEDULE` string
//! (`"t1.t0.r2..."`); feeding it back via [`Config::schedule`] (or the env
//! var, picked up by [`Config::from_env`]) replays that execution exactly.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::clock::VClock;
use crate::rt::{self, dependent, Op, Shared, State, Status, Th};

/// Exploration bounds and replay input.
#[derive(Clone, Debug)]
pub struct Config {
    /// Hard cap on explored executions; exceeding it yields `Outcome::Budget`.
    pub max_executions: u64,
    /// Hard cap on scheduling steps within one execution.
    pub max_steps: usize,
    /// Max number of preemptive context switches per execution (None = full).
    pub preemption_bound: Option<usize>,
    /// Replay exactly this schedule instead of exploring.
    pub schedule: Option<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_executions: 200_000,
            max_steps: 2_000,
            preemption_bound: None,
            schedule: None,
        }
    }
}

impl Config {
    /// Defaults plus `CLAMPI_MC_SCHEDULE` replay pickup.
    pub fn from_env() -> Self {
        let mut c = Self::default();
        if let Ok(s) = std::env::var("CLAMPI_MC_SCHEDULE") {
            if !s.is_empty() {
                c.schedule = Some(s);
            }
        }
        c
    }

    /// CI smoke bounds: preemption bound 3, lifted to a full exploration
    /// when `CLAMPI_MC_FULL=1` is set.
    pub fn smoke() -> Self {
        let mut c = Self::from_env();
        let full = std::env::var("CLAMPI_MC_FULL").is_ok_and(|v| v == "1");
        if !full {
            c.preemption_bound = Some(3);
        }
        c
    }

    pub fn with_preemption_bound(mut self, b: Option<usize>) -> Self {
        self.preemption_bound = b;
        self
    }

    pub fn with_schedule(mut self, s: &str) -> Self {
        self.schedule = Some(s.to_string());
        self
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Decision {
    /// Schedule this thread for one step.
    Thread(usize),
    /// For a multi-candidate load: offset into the coherent-store suffix.
    Read(usize),
}

fn format_schedule(ds: &[Decision]) -> String {
    let toks: Vec<String> = ds
        .iter()
        .map(|d| match d {
            Decision::Thread(t) => format!("t{t}"),
            Decision::Read(o) => format!("r{o}"),
        })
        .collect();
    toks.join(".")
}

fn parse_schedule(s: &str) -> Result<Vec<Decision>, String> {
    let mut out = Vec::new();
    for tok in s.split('.') {
        let (kind, num) = tok.split_at(1.min(tok.len()));
        let n: usize = num
            .parse()
            .map_err(|_| format!("bad schedule token {tok:?}"))?;
        match kind {
            "t" => out.push(Decision::Thread(n)),
            "r" => out.push(Decision::Read(n)),
            _ => return Err(format!("bad schedule token {tok:?}")),
        }
    }
    if out.is_empty() {
        return Err("empty schedule".to_string());
    }
    Ok(out)
}

/// A reproducible property violation.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// Feed back via `CLAMPI_MC_SCHEDULE` to replay this execution.
    pub schedule: String,
    /// Human-readable per-step trace of the failing execution.
    pub trace: String,
    /// The panic message / deadlock description.
    pub message: String,
}

#[derive(Clone, Debug)]
pub enum Outcome {
    /// Every explored execution satisfied the properties.
    Pass,
    /// A schedule violated a property (assert/panic/deadlock).
    Fail(Counterexample),
    /// `max_executions` or `max_steps` exceeded before the space was covered.
    Budget(String),
    /// A supplied replay schedule did not fit this model.
    ScheduleMismatch(String),
}

#[derive(Clone, Debug)]
pub struct Report {
    pub executions: u64,
    /// True when the preemption bound pruned at least one alternative, i.e.
    /// Pass means "no violation within the bound", not full coverage.
    pub truncated: bool,
    pub outcome: Outcome,
}

impl Report {
    pub fn passed(&self) -> bool {
        matches!(self.outcome, Outcome::Pass)
    }

    /// Panic with a replayable counterexample unless the exploration passed.
    pub fn assert_pass(&self) {
        match &self.outcome {
            Outcome::Pass => {}
            Outcome::Fail(cx) => panic!(
                "mc: property violated after {} execution(s)\n  message: {}\n  replay: CLAMPI_MC_SCHEDULE={}\n  trace:\n{}",
                self.executions, cx.message, cx.schedule, cx.trace
            ),
            Outcome::Budget(m) => panic!("mc: exploration budget exhausted: {m}"),
            Outcome::ScheduleMismatch(m) => panic!("mc: schedule mismatch: {m}"),
        }
    }

    /// Panic unless the exploration found a violation; returns it otherwise.
    pub fn expect_fail(&self) -> &Counterexample {
        match &self.outcome {
            Outcome::Fail(cx) => cx,
            other => panic!(
                "mc: expected a property violation, got {other:?} after {} execution(s)",
                self.executions
            ),
        }
    }
}

struct ThreadNode {
    /// Enabled threads at this node; also the (maximal) persistent set.
    enabled: Vec<usize>,
    sleep: BTreeSet<usize>,
    chosen: usize,
    prev_running: Option<usize>,
    preempt_used: usize,
}

struct ReadNode {
    n: usize,
    tried: usize,
    chosen: usize,
}

enum Node {
    Thread(ThreadNode),
    Read(ReadNode),
}

enum ExecEnd {
    AllDone,
    Pruned,
    Failed(Counterexample),
    StepBudget,
    Mismatch(String),
}

fn render_trace(st: &State) -> String {
    let lines: Vec<String> = st
        .trace
        .iter()
        .enumerate()
        .map(|(i, s)| format!("    #{i:<3} {s}"))
        .collect();
    lines.join("\n")
}

struct Explorer {
    cfg: Config,
    stack: Vec<Node>,
    truncated: bool,
}

impl Explorer {
    /// Run one execution. With `fixed` decisions this is a pure replay (no
    /// DFS bookkeeping); otherwise the node stack prescribes the prefix and
    /// grows at the frontier.
    fn run_one(
        &mut self,
        body: Arc<dyn Fn() + Send + Sync + 'static>,
        fixed: Option<&[Decision]>,
    ) -> ExecEnd {
        let sh = Shared::new(rt::next_epoch());
        {
            let mut st = sh.lock();
            st.threads.push(Th::new(VClock::new(), Op::Begin));
        }
        {
            let sh2 = sh.clone();
            let h = std::thread::spawn(move || rt::vthread_main(sh2, 0, move || body()));
            sh.lock().os_handles.push(h);
        }
        let mut decisions: Vec<Decision> = Vec::new();
        let mut depth = 0usize; // stack cursor (exploration mode only)
        let mut fpos = 0usize; // fixed-list cursor (replay mode only)
        let mut nsteps = 0usize;
        let mut prev_running: Option<usize> = None;
        let mut preempt_used = 0usize;
        let mut cur_sleep: BTreeSet<usize> = BTreeSet::new();

        let end = 'exec: loop {
            let mut st = sh.lock();
            while st
                .threads
                .iter()
                .any(|t| t.status == Status::Running || t.granted)
            {
                st = sh.wait(st);
            }
            if let Some(msg) = st.failure.clone() {
                break ExecEnd::Failed(Counterexample {
                    schedule: format_schedule(&decisions),
                    trace: render_trace(&st),
                    message: msg,
                });
            }
            if st.threads.iter().all(|t| t.status == Status::Finished) {
                break ExecEnd::AllDone;
            }
            let enabled: Vec<usize> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status == Status::AtPoint)
                .filter(|(_, t)| t.pending.is_some_and(|op| st.op_enabled(op)))
                .map(|(i, _)| i)
                .collect();
            if enabled.is_empty() {
                break ExecEnd::Failed(Counterexample {
                    schedule: format_schedule(&decisions),
                    trace: render_trace(&st),
                    message: "deadlock: every live thread is blocked".to_string(),
                });
            }
            if nsteps >= self.cfg.max_steps {
                break ExecEnd::StepBudget;
            }

            // --- thread decision ---
            let p = if let Some(list) = fixed {
                match list.get(fpos) {
                    Some(Decision::Thread(t)) if enabled.contains(t) => {
                        fpos += 1;
                        *t
                    }
                    other => {
                        break ExecEnd::Mismatch(format!(
                            "step {nsteps}: expected one of threads {enabled:?}, schedule has {other:?}"
                        ));
                    }
                }
            } else if depth < self.stack.len() {
                match &self.stack[depth] {
                    Node::Thread(tn) => {
                        if !enabled.contains(&tn.chosen) {
                            break ExecEnd::Mismatch(format!(
                                "step {nsteps}: replayed choice t{} not enabled in {enabled:?}",
                                tn.chosen
                            ));
                        }
                        cur_sleep = tn.sleep.clone();
                        depth += 1;
                        tn.chosen
                    }
                    Node::Read(_) => {
                        break ExecEnd::Mismatch(format!(
                            "step {nsteps}: stack expected a read node here"
                        ));
                    }
                }
            } else {
                if enabled.iter().all(|t| cur_sleep.contains(t)) {
                    // Every enabled move is asleep: this state's subtree was
                    // already covered through an equivalent interleaving.
                    break ExecEnd::Pruned;
                }
                let choice = prev_running
                    .filter(|t| enabled.contains(t) && !cur_sleep.contains(t))
                    .unwrap_or_else(|| {
                        *enabled
                            .iter()
                            .find(|t| !cur_sleep.contains(t))
                            .expect("checked above: some enabled thread is awake")
                    });
                self.stack.push(Node::Thread(ThreadNode {
                    enabled: enabled.clone(),
                    sleep: cur_sleep.clone(),
                    chosen: choice,
                    prev_running,
                    preempt_used,
                }));
                depth += 1;
                choice
            };
            decisions.push(Decision::Thread(p));
            let op = st.threads[p]
                .pending
                .expect("AtPoint thread has a pending op");

            if prev_running.is_some_and(|q| q != p && enabled.contains(&q)) {
                preempt_used += 1;
            }

            // --- read decision (loads with several coherent stores) ---
            if let Op::Load { cell, ord } = op {
                let (lo, n) = st.load_candidates(p, cell, ord);
                let count = n - lo;
                let off = if count <= 1 {
                    0
                } else if let Some(list) = fixed {
                    match list.get(fpos) {
                        Some(Decision::Read(o)) if *o < count => {
                            fpos += 1;
                            *o
                        }
                        other => {
                            break 'exec ExecEnd::Mismatch(format!(
                                "step {nsteps}: expected a read decision < {count}, schedule has {other:?}"
                            ));
                        }
                    }
                } else if depth < self.stack.len() {
                    match &self.stack[depth] {
                        Node::Read(rn) if rn.n == count => {
                            depth += 1;
                            rn.chosen
                        }
                        _ => {
                            break 'exec ExecEnd::Mismatch(format!(
                                "step {nsteps}: stack desynchronized on a read node"
                            ));
                        }
                    }
                } else {
                    // Default to the newest store; alternatives walk back.
                    self.stack.push(Node::Read(ReadNode {
                        n: count,
                        tried: 1,
                        chosen: count - 1,
                    }));
                    depth += 1;
                    count - 1
                };
                if count > 1 {
                    decisions.push(Decision::Read(off));
                }
                st.read_choice = Some(lo + off);
            }

            if fixed.is_none() {
                // Sleep-set wakeup: a dependent step invalidates the "already
                // explored" argument for sleeping threads.
                cur_sleep.retain(|&q| match st.threads[q].pending {
                    Some(oq) => !dependent(oq, op),
                    None => false,
                });
            }

            st.threads[p].granted = true;
            prev_running = Some(p);
            nsteps += 1;
            sh.cv.notify_all();
        };

        // Teardown: cancel parked threads, wait everyone out, reap OS threads.
        {
            let mut st = sh.lock();
            st.shutdown = true;
            sh.cv.notify_all();
            while !st.threads.iter().all(|t| t.status == Status::Finished) {
                st = sh.wait(st);
            }
        }
        let handles = std::mem::take(&mut sh.lock().os_handles);
        for h in handles {
            let _ = h.join();
        }
        end
    }

    /// Flip the deepest node with an unexplored alternative; false = done.
    fn advance(&mut self) -> bool {
        while let Some(top) = self.stack.last_mut() {
            match top {
                Node::Read(rn) => {
                    if rn.tried < rn.n {
                        rn.chosen = rn.n - 1 - rn.tried;
                        rn.tried += 1;
                        return true;
                    }
                    self.stack.pop();
                }
                Node::Thread(tn) => {
                    tn.sleep.insert(tn.chosen);
                    let bound = self.cfg.preemption_bound;
                    let mut skipped_by_bound = false;
                    let next = tn.enabled.iter().copied().find(|q| {
                        if tn.sleep.contains(q) {
                            return false;
                        }
                        if let Some(b) = bound {
                            let is_pre = tn
                                .prev_running
                                .is_some_and(|r| r != *q && tn.enabled.contains(&r));
                            if is_pre && tn.preempt_used >= b {
                                skipped_by_bound = true;
                                return false;
                            }
                        }
                        true
                    });
                    match next {
                        Some(q) => {
                            tn.chosen = q;
                            return true;
                        }
                        None => {
                            if skipped_by_bound {
                                self.truncated = true;
                            }
                            self.stack.pop();
                        }
                    }
                }
            }
        }
        false
    }
}

/// Explore (or replay) every schedule of `body` under `cfg`.
///
/// The body runs many times; create tracked cells, mutexes and virtual
/// threads *inside* it so every execution starts fresh. Properties are plain
/// `assert!`s — a panic on any schedule becomes a replayable counterexample.
pub fn check<F>(cfg: Config, body: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let body: Arc<dyn Fn() + Send + Sync + 'static> = Arc::new(body);
    if let Some(s) = cfg.schedule.clone() {
        let list = match parse_schedule(&s) {
            Ok(l) => l,
            Err(e) => {
                return Report {
                    executions: 0,
                    truncated: false,
                    outcome: Outcome::ScheduleMismatch(e),
                }
            }
        };
        let mut ex = Explorer {
            cfg,
            stack: Vec::new(),
            truncated: false,
        };
        let end = ex.run_one(body, Some(&list));
        let outcome = match end {
            ExecEnd::Failed(cx) => Outcome::Fail(cx),
            ExecEnd::AllDone | ExecEnd::Pruned => Outcome::Pass,
            ExecEnd::StepBudget => Outcome::Budget("max_steps exceeded during replay".to_string()),
            ExecEnd::Mismatch(m) => Outcome::ScheduleMismatch(m),
        };
        return Report {
            executions: 1,
            truncated: false,
            outcome,
        };
    }

    let mut ex = Explorer {
        cfg,
        stack: Vec::new(),
        truncated: false,
    };
    let mut executions: u64 = 0;
    loop {
        if executions >= ex.cfg.max_executions {
            return Report {
                executions,
                truncated: ex.truncated,
                outcome: Outcome::Budget(format!(
                    "exceeded max_executions={} before covering the schedule space",
                    ex.cfg.max_executions
                )),
            };
        }
        executions += 1;
        match ex.run_one(body.clone(), None) {
            ExecEnd::Failed(cx) => {
                return Report {
                    executions,
                    truncated: ex.truncated,
                    outcome: Outcome::Fail(cx),
                }
            }
            ExecEnd::StepBudget => {
                return Report {
                    executions,
                    truncated: ex.truncated,
                    outcome: Outcome::Budget(format!(
                        "an execution exceeded max_steps={}",
                        ex.cfg.max_steps
                    )),
                }
            }
            ExecEnd::Mismatch(m) => {
                panic!("mc internal error: deterministic replay diverged: {m}")
            }
            ExecEnd::AllDone | ExecEnd::Pruned => {
                if !ex.advance() {
                    return Report {
                        executions,
                        truncated: ex.truncated,
                        outcome: Outcome::Pass,
                    };
                }
            }
        }
    }
}
