//! The atomics facade consumed by `clampi::sync_shim` and `rma`.
//!
//! Shipped protocol code (the seqlock front, the snapshot commit clock) is
//! written against `McAtomicU64`/`mc_fence`. In a normal build these are
//! *type aliases and re-exports* of `std::sync::atomic` items — the facade
//! costs exactly nothing. Under `--cfg clampi_mc` they switch to the tracked
//! [`crate::TrackedU64`] cell and scheduler-aware [`crate::fence`], so the
//! model checker explores the real shipped code paths, not a transliterated
//! model.

/// Tracked atomic u64 under `cfg(clampi_mc)`, plain `AtomicU64` otherwise.
#[cfg(clampi_mc)]
pub type McAtomicU64 = crate::TrackedU64;
/// Tracked atomic u64 under `cfg(clampi_mc)`, plain `AtomicU64` otherwise.
#[cfg(not(clampi_mc))]
pub type McAtomicU64 = std::sync::atomic::AtomicU64;

/// The `McFence` shim: scheduler-visible fence under `cfg(clampi_mc)`,
/// `std::sync::atomic::fence` otherwise.
#[cfg(clampi_mc)]
pub use crate::fence as mc_fence;
/// The `McFence` shim: scheduler-visible fence under `cfg(clampi_mc)`,
/// `std::sync::atomic::fence` otherwise.
#[cfg(not(clampi_mc))]
pub use std::sync::atomic::fence as mc_fence;

/// True when this build is running with the tracked facade.
pub const MC_ACTIVE: bool = cfg!(clampi_mc);
