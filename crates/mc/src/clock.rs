//! Vector clocks over virtual-thread ids.
//!
//! Components are indexed by the spawn order of virtual threads within one
//! execution, so clocks are comparable across the whole run. The vector grows
//! lazily as threads spawn; a missing component reads as 0.

/// A grow-on-demand vector clock.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock(Vec<u64>);

impl VClock {
    /// The all-zero clock.
    pub fn new() -> Self {
        VClock(Vec::new())
    }

    /// Component `i`, or 0 if the vector has not grown that far.
    pub fn get(&self, i: usize) -> u64 {
        self.0.get(i).copied().unwrap_or(0)
    }

    /// Set component `i` to `v`, growing the vector as needed.
    pub fn set(&mut self, i: usize, v: u64) {
        if self.0.len() <= i {
            self.0.resize(i + 1, 0);
        }
        self.0[i] = v;
    }

    /// Increment component `i` and return the new value.
    pub fn bump(&mut self, i: usize) -> u64 {
        let v = self.get(i) + 1;
        self.set(i, v);
        v
    }

    /// Pointwise maximum with `other`.
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if v > self.0[i] {
                self.0[i] = v;
            }
        }
    }

    /// True when every component is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&v| v == 0)
    }

    /// Reset every component to zero, keeping capacity.
    pub fn clear(&mut self) {
        self.0.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VClock::new();
        a.set(0, 3);
        a.set(2, 1);
        let mut b = VClock::new();
        b.set(0, 1);
        b.set(1, 5);
        a.join(&b);
        assert_eq!(a.get(0), 3);
        assert_eq!(a.get(1), 5);
        assert_eq!(a.get(2), 1);
        assert_eq!(a.get(3), 0);
    }

    #[test]
    fn bump_counts_from_zero() {
        let mut a = VClock::new();
        assert_eq!(a.bump(4), 1);
        assert_eq!(a.bump(4), 2);
        assert_eq!(a.get(4), 2);
        assert!(!a.is_zero());
        a.clear();
        assert!(a.is_zero());
    }
}
