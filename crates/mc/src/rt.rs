//! Execution runtime: virtual threads, tracked cells, and the operational
//! weak-memory model.
//!
//! One *execution* runs the checked body once under a controller (the thread
//! that called [`crate::check`]). Every virtual thread is a real OS thread,
//! but at most one runs user code at any instant: each tracked operation is a
//! rendezvous where the thread parks, the controller picks who proceeds (and,
//! for loads, which store is read), and the chosen thread applies the
//! operation against the shared model state.
//!
//! ## Memory model (vector clocks, loom-style)
//!
//! Each thread carries a happens-before clock `clock`, a `rel_fence` clock
//! (snapshot of `clock` at its last Release fence) and an `acq_pending` clock
//! (accumulated message clocks of its Relaxed loads, merged into `clock` at
//! an Acquire fence). Each store records the writer, the writer's local time,
//! and a *message* clock: the writer's full clock for Release-or-stronger
//! stores, `rel_fence` for Relaxed stores. An Acquire-or-stronger load joins
//! the message into `clock`; a Relaxed load joins it into `acq_pending`.
//! RMWs additionally join the previous store's message into their own
//! (release-sequence continuation). SeqCst operations join with a global
//! `sc` clock, which models the total order S as strictly-stronger-than-C11
//! (sound for finding bugs in code that *uses* SeqCst; see INTERNALS.md).
//!
//! A load may read any store in the cell's modification order that is not
//! older than (a) the newest store already read by this thread (read-read
//! coherence) and (b) the newest store the thread's clock knows about
//! (write-read coherence). The explorer enumerates every such candidate.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

use crate::clock::VClock;

/// Writer id used for the initial value of a cell (known to every thread).
pub(crate) const INIT_WRITER: usize = usize::MAX;

/// Global epoch counter; each execution gets a fresh epoch so cell and mutex
/// registrations from earlier executions are never reused.
static EPOCH: AtomicU64 = AtomicU64::new(1);

pub(crate) fn next_epoch() -> u64 {
    EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// Panic payload used to cancel a parked virtual thread during teardown.
pub(crate) struct Cancelled;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    /// Executing user code (or about to); the controller must wait.
    Running,
    /// Parked at a rendezvous with `pending` declared.
    AtPoint,
    /// The thread's body returned (or panicked; see `State::failure`).
    Finished,
}

/// A declared-but-not-yet-executed operation; what the controller needs for
/// enabledness and dependency analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Op {
    Begin,
    Load { cell: usize, ord: Ordering },
    Store { cell: usize, ord: Ordering },
    Rmw { cell: usize, ord: Ordering },
    Fence { ord: Ordering },
    Lock { mutex: usize },
    Unlock { mutex: usize },
    Join { tid: usize },
}

impl Op {
    fn is_sc(self) -> bool {
        let ord = match self {
            Op::Load { ord, .. } | Op::Store { ord, .. } | Op::Rmw { ord, .. } => ord,
            Op::Fence { ord } => ord,
            _ => return false,
        };
        // SeqCst ops all touch the global `sc` clock, so any two of them are
        // treated as dependent by the explorer.
        ord == Ordering::SeqCst
    }

    fn cell_access(self) -> Option<(usize, bool)> {
        match self {
            Op::Load { cell, .. } => Some((cell, false)),
            Op::Store { cell, .. } | Op::Rmw { cell, .. } => Some((cell, true)),
            _ => None,
        }
    }
}

/// True when the two operations do not commute (used for DPOR backtracking
/// and sleep-set wakeups). Conservative over-approximation is sound; an
/// under-approximation would prune reachable behaviors.
pub(crate) fn dependent(a: Op, b: Op) -> bool {
    if let (Some((ca, wa)), Some((cb, wb))) = (a.cell_access(), b.cell_access()) {
        if ca == cb && (wa || wb) {
            return true;
        }
    }
    let mutex_of = |op: Op| match op {
        Op::Lock { mutex } | Op::Unlock { mutex } => Some(mutex),
        _ => None,
    };
    if let (Some(ma), Some(mb)) = (mutex_of(a), mutex_of(b)) {
        if ma == mb {
            return true;
        }
    }
    a.is_sc() && b.is_sc()
}

pub(crate) struct StoreRec {
    pub val: u64,
    pub writer: usize,
    /// The writer's own clock component when it issued this store.
    pub time: u64,
    /// Clock acquired by readers that synchronize with this store.
    pub msg: VClock,
}

pub(crate) struct CellState {
    pub label: String,
    pub stores: Vec<StoreRec>,
}

pub(crate) struct MutexState {
    pub label: String,
    pub owner: Option<usize>,
    /// Clock of the last unlock; joined by the next locker (HB edge).
    pub release: VClock,
}

pub(crate) struct Th {
    pub status: Status,
    pub pending: Option<Op>,
    pub granted: bool,
    pub clock: VClock,
    pub rel_fence: VClock,
    pub acq_pending: VClock,
    /// Per cell: newest modification-order index this thread has read or
    /// written (coherence floor for its next read).
    pub last_read: HashMap<usize, usize>,
}

impl Th {
    pub(crate) fn new(clock: VClock, pending: Op) -> Self {
        Th {
            status: Status::AtPoint,
            pending: Some(pending),
            granted: false,
            clock,
            rel_fence: VClock::new(),
            acq_pending: VClock::new(),
            last_read: HashMap::new(),
        }
    }
}

pub(crate) struct State {
    pub epoch: u64,
    pub threads: Vec<Th>,
    pub cells: Vec<CellState>,
    pub mutexes: Vec<MutexState>,
    /// Global clock threading the total order of SeqCst operations.
    pub sc: VClock,
    pub shutdown: bool,
    pub failure: Option<String>,
    /// Absolute store index the controller chose for the next granted load.
    pub read_choice: Option<usize>,
    pub trace: Vec<String>,
    pub os_handles: Vec<std::thread::JoinHandle<()>>,
}

impl State {
    pub(crate) fn new(epoch: u64) -> Self {
        State {
            epoch,
            threads: Vec::new(),
            cells: Vec::new(),
            mutexes: Vec::new(),
            sc: VClock::new(),
            shutdown: false,
            failure: None,
            read_choice: None,
            trace: Vec::new(),
            os_handles: Vec::new(),
        }
    }

    pub(crate) fn op_enabled(&self, op: Op) -> bool {
        match op {
            Op::Lock { mutex } => self.mutexes[mutex].owner.is_none(),
            Op::Join { tid } => self.threads[tid].status == Status::Finished,
            _ => true,
        }
    }

    fn acquires(ord: Ordering) -> bool {
        // SeqCst subsumes Acquire on the load side.
        matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
    }

    fn releases(ord: Ordering) -> bool {
        // SeqCst subsumes Release on the store side.
        matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
    }

    fn push_trace(&mut self, me: usize, text: String) {
        self.trace.push(format!("t{me} {text}"));
    }

    pub(crate) fn apply_begin(&mut self, me: usize) {
        self.threads[me].clock.bump(me);
        self.push_trace(me, "begin".to_string());
    }

    pub(crate) fn apply_fence(&mut self, me: usize, ord: Ordering) {
        self.threads[me].clock.bump(me);
        if Self::acquires(ord) {
            let pend = self.threads[me].acq_pending.clone();
            self.threads[me].clock.join(&pend);
        }
        if Self::releases(ord) {
            self.threads[me].rel_fence = self.threads[me].clock.clone();
        }
        // SeqCst fences additionally order against every other SeqCst op via
        // the global sc clock.
        if ord == Ordering::SeqCst {
            self.threads[me].clock.join(&self.sc.clone());
            let c = self.threads[me].clock.clone();
            self.sc.join(&c);
        }
        self.push_trace(me, format!("fence {ord:?}"));
    }

    pub(crate) fn apply_store(&mut self, me: usize, cell: usize, ord: Ordering, val: u64) {
        debug_assert!(
            matches!(
                ord,
                // Validating the caller's ordering, not choosing one: SeqCst
                // is a legal store ordering in std's API, so it is here too.
                Ordering::Relaxed | Ordering::Release | Ordering::SeqCst
            ),
            "invalid store ordering {ord:?}"
        );
        let time = self.threads[me].clock.bump(me);
        // A SeqCst store publishes its clock into the SeqCst total order.
        if ord == Ordering::SeqCst {
            let c = self.threads[me].clock.clone();
            self.sc.join(&c);
        }
        let th = &self.threads[me];
        let msg = if Self::releases(ord) {
            th.clock.clone()
        } else {
            th.rel_fence.clone()
        };
        let idx = self.cells[cell].stores.len();
        self.cells[cell].stores.push(StoreRec {
            val,
            writer: me,
            time,
            msg,
        });
        self.threads[me].last_read.insert(cell, idx);
        let label = self.cells[cell].label.clone();
        self.push_trace(me, format!("store {label} <- {val} {ord:?} [#{idx}]"));
    }

    /// Candidate stores a load by `me` on `cell` may read: the contiguous
    /// modification-order suffix `[lo, n)`. Returns `(lo, n)`.
    pub(crate) fn load_candidates(&self, me: usize, cell: usize, ord: Ordering) -> (usize, usize) {
        let th = &self.threads[me];
        let mut view = th.clock.clone();
        // A SeqCst load will join the sc clock before reading; candidates
        // must be computed against that post-join view.
        if ord == Ordering::SeqCst {
            view.join(&self.sc);
        }
        let stores = &self.cells[cell].stores;
        let mut lo = th.last_read.get(&cell).copied().unwrap_or(0);
        for (i, s) in stores.iter().enumerate().skip(lo) {
            if s.writer != INIT_WRITER && view.get(s.writer) >= s.time {
                lo = i;
            }
        }
        (lo, stores.len())
    }

    pub(crate) fn apply_load(&mut self, me: usize, cell: usize, ord: Ordering) -> u64 {
        debug_assert!(
            matches!(
                ord,
                // Validating the caller's ordering, not choosing one: SeqCst
                // is a legal load ordering in std's API, so it is here too.
                Ordering::Relaxed | Ordering::Acquire | Ordering::SeqCst
            ),
            "invalid load ordering {ord:?}"
        );
        let choice = self
            .read_choice
            .take()
            .expect("mc internal: load granted without a read choice");
        self.threads[me].clock.bump(me);
        // SeqCst load: become aware of every prior SeqCst-published store.
        if ord == Ordering::SeqCst {
            let sc = self.sc.clone();
            self.threads[me].clock.join(&sc);
        }
        let (val, msg) = {
            let s = &self.cells[cell].stores[choice];
            (s.val, s.msg.clone())
        };
        if Self::acquires(ord) {
            self.threads[me].clock.join(&msg);
        } else {
            self.threads[me].acq_pending.join(&msg);
        }
        // SeqCst load: publish into the SeqCst total order as well.
        if ord == Ordering::SeqCst {
            let c = self.threads[me].clock.clone();
            self.sc.join(&c);
        }
        self.threads[me].last_read.insert(cell, choice);
        let label = self.cells[cell].label.clone();
        self.push_trace(me, format!("load {label} {ord:?} -> {val} [#{choice}]"));
        val
    }

    /// One-shot atomic read-modify-write against the newest store.
    pub(crate) fn apply_rmw(
        &mut self,
        me: usize,
        cell: usize,
        set_ord: Ordering,
        fetch_ord: Ordering,
        f: &mut dyn FnMut(u64) -> Option<u64>,
    ) -> (Result<u64, u64>, u64) {
        let prev_idx = self.cells[cell].stores.len() - 1;
        let (prev, prev_msg) = {
            let s = &self.cells[cell].stores[prev_idx];
            (s.val, s.msg.clone())
        };
        match f(prev) {
            Some(newv) => {
                let time = self.threads[me].clock.bump(me);
                // SeqCst RMW behaves as SeqCst load + store on the sc clock.
                if set_ord == Ordering::SeqCst {
                    let sc = self.sc.clone();
                    self.threads[me].clock.join(&sc);
                }
                if Self::acquires(set_ord) {
                    self.threads[me].clock.join(&prev_msg);
                } else {
                    self.threads[me].acq_pending.join(&prev_msg);
                }
                // SeqCst RMW also publishes into the sc total order.
                if set_ord == Ordering::SeqCst {
                    let c = self.threads[me].clock.clone();
                    self.sc.join(&c);
                }
                let th = &self.threads[me];
                let mut msg = if Self::releases(set_ord) {
                    th.clock.clone()
                } else {
                    th.rel_fence.clone()
                };
                // RMWs continue the release sequence of the store they read.
                msg.join(&prev_msg);
                let idx = self.cells[cell].stores.len();
                self.cells[cell].stores.push(StoreRec {
                    val: newv,
                    writer: me,
                    time,
                    msg,
                });
                self.threads[me].last_read.insert(cell, idx);
                let label = self.cells[cell].label.clone();
                self.push_trace(
                    me,
                    format!("rmw {label} {prev} -> {newv} {set_ord:?} [#{idx}]"),
                );
                (Ok(prev), newv)
            }
            None => {
                self.threads[me].clock.bump(me);
                if Self::acquires(fetch_ord) {
                    self.threads[me].clock.join(&prev_msg);
                } else {
                    self.threads[me].acq_pending.join(&prev_msg);
                }
                self.threads[me].last_read.insert(cell, prev_idx);
                let label = self.cells[cell].label.clone();
                self.push_trace(me, format!("rmw {label} abort -> {prev} {fetch_ord:?}"));
                (Err(prev), prev)
            }
        }
    }

    pub(crate) fn apply_lock(&mut self, me: usize, mutex: usize) {
        debug_assert!(self.mutexes[mutex].owner.is_none());
        self.threads[me].clock.bump(me);
        let rel = self.mutexes[mutex].release.clone();
        self.threads[me].clock.join(&rel);
        self.mutexes[mutex].owner = Some(me);
        let label = self.mutexes[mutex].label.clone();
        self.push_trace(me, format!("lock {label}"));
    }

    pub(crate) fn apply_unlock(&mut self, me: usize, mutex: usize) {
        self.threads[me].clock.bump(me);
        self.mutexes[mutex].release = self.threads[me].clock.clone();
        self.mutexes[mutex].owner = None;
        let label = self.mutexes[mutex].label.clone();
        self.push_trace(me, format!("unlock {label}"));
    }

    pub(crate) fn apply_join(&mut self, me: usize, tid: usize) {
        self.threads[me].clock.bump(me);
        let c = self.threads[tid].clock.clone();
        self.threads[me].clock.join(&c);
        self.push_trace(me, format!("join t{tid}"));
    }
}

pub(crate) struct Shared {
    pub m: StdMutex<State>,
    pub cv: Condvar,
}

impl Shared {
    pub(crate) fn new(epoch: u64) -> Arc<Self> {
        Arc::new(Shared {
            m: StdMutex::new(State::new(epoch)),
            cv: Condvar::new(),
        })
    }

    pub(crate) fn lock(&self) -> StdMutexGuard<'_, State> {
        self.m.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn wait<'a>(&self, g: StdMutexGuard<'a, State>) -> StdMutexGuard<'a, State> {
        self.cv.wait(g).unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Clone)]
pub(crate) struct Ctx {
    pub sh: Arc<Shared>,
    pub me: usize,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

pub(crate) fn current() -> Option<Ctx> {
    CURRENT.with(|c| c.borrow().clone())
}

fn set_current(ctx: Option<Ctx>) {
    CURRENT.with(|c| *c.borrow_mut() = ctx);
}

/// Rendezvous: declare `op`, park until the controller grants it, then apply
/// `exec` against the model state under the lock. Returns `None` when the
/// execution is tearing down (caller falls back to plain std behavior), and
/// unwinds with [`Cancelled`] when torn down mid-park.
pub(crate) fn op_cycle<R>(
    ctx: &Ctx,
    op: Op,
    exec: impl FnOnce(&mut State, usize) -> R,
) -> Option<R> {
    if std::thread::panicking() {
        // Never re-enter the scheduler from an unwinding thread (e.g. a
        // MutexGuard drop during a failed assertion): a second panic during
        // unwind would abort the process.
        return None;
    }
    let sh = ctx.sh.clone();
    let mut st = sh.lock();
    if st.shutdown {
        return None;
    }
    st.threads[ctx.me].pending = Some(op);
    st.threads[ctx.me].status = Status::AtPoint;
    sh.cv.notify_all();
    loop {
        if st.threads[ctx.me].granted {
            break;
        }
        if st.shutdown {
            drop(st);
            std::panic::panic_any(Cancelled);
        }
        st = sh.wait(st);
    }
    let th = &mut st.threads[ctx.me];
    th.granted = false;
    th.pending = None;
    th.status = Status::Running;
    Some(exec(&mut st, ctx.me))
}

/// Body of every virtual thread's OS thread: wait for the Begin grant, run
/// the user closure, record the outcome.
pub(crate) fn vthread_main<F: FnOnce()>(sh: Arc<Shared>, me: usize, f: F) {
    let started = {
        let mut st = sh.lock();
        loop {
            if st.threads[me].granted {
                let th = &mut st.threads[me];
                th.granted = false;
                th.pending = None;
                th.status = Status::Running;
                st.apply_begin(me);
                break true;
            }
            if st.shutdown {
                break false;
            }
            st = sh.wait(st);
        }
    };
    let res = if started {
        set_current(Some(Ctx { sh: sh.clone(), me }));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        set_current(None);
        r
    } else {
        Ok(())
    };
    let mut st = sh.lock();
    st.threads[me].status = Status::Finished;
    st.threads[me].pending = None;
    if let Err(p) = res {
        if p.downcast_ref::<Cancelled>().is_none() && st.failure.is_none() {
            let msg = if let Some(s) = p.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = p.downcast_ref::<String>() {
                s.clone()
            } else {
                "virtual thread panicked".to_string()
            };
            st.failure = Some(msg);
        }
    }
    sh.cv.notify_all();
}

// ---------------------------------------------------------------------------
// Public primitives
// ---------------------------------------------------------------------------

fn pack_reg(epoch: u64, id: usize) -> u64 {
    ((epoch & 0xffff_ffff) << 32) | ((id as u64 + 1) & 0xffff_ffff)
}

fn unpack_reg(packed: u64) -> (u64, usize) {
    (packed >> 32, (packed & 0xffff_ffff) as usize - 1)
}

/// A model-checked 64-bit atomic. Outside an active exploration it behaves
/// exactly like [`std::sync::atomic::AtomicU64`]; inside one, every access is
/// a schedule point and loads may observe any coherent store.
///
/// Create tracked cells *inside* the checked body so each execution starts
/// from the constructor value; cells shared across executions keep their
/// final fallback value and make runs non-hermetic.
pub struct TrackedU64 {
    fallback: AtomicU64,
    reg: AtomicU64,
    label: &'static str,
}

impl TrackedU64 {
    pub const fn new(v: u64) -> Self {
        Self::with_label(v, "")
    }

    /// Like `new`, but traces under `label` instead of a numbered cell id.
    pub const fn with_label(v: u64, label: &'static str) -> Self {
        TrackedU64 {
            fallback: AtomicU64::new(v),
            reg: AtomicU64::new(0),
            label,
        }
    }

    fn cell_id(&self, ctx: &Ctx) -> usize {
        let packed = self.reg.load(Ordering::Relaxed);
        let mut st = ctx.sh.lock();
        if packed != 0 {
            let (ep, id) = unpack_reg(packed);
            if ep == st.epoch & 0xffff_ffff {
                return id;
            }
        }
        let id = st.cells.len();
        let label = if self.label.is_empty() {
            format!("c{id}")
        } else {
            self.label.to_string()
        };
        st.cells.push(CellState {
            label,
            stores: vec![StoreRec {
                val: self.fallback.load(Ordering::Relaxed),
                writer: INIT_WRITER,
                time: 0,
                msg: VClock::new(),
            }],
        });
        self.reg.store(pack_reg(st.epoch, id), Ordering::Relaxed);
        id
    }

    pub fn load(&self, ord: Ordering) -> u64 {
        if let Some(ctx) = current() {
            let cell = self.cell_id(&ctx);
            if let Some(v) = op_cycle(&ctx, Op::Load { cell, ord }, |st, me| {
                st.apply_load(me, cell, ord)
            }) {
                return v;
            }
        }
        self.fallback.load(ord)
    }

    pub fn store(&self, val: u64, ord: Ordering) {
        if let Some(ctx) = current() {
            let cell = self.cell_id(&ctx);
            if op_cycle(&ctx, Op::Store { cell, ord }, |st, me| {
                st.apply_store(me, cell, ord, val)
            })
            .is_some()
            {
                // Mirror so the fallback value tracks the newest store.
                self.fallback.store(val, Ordering::Relaxed);
                return;
            }
        }
        self.fallback.store(val, ord);
    }

    pub fn fetch_add(&self, n: u64, ord: Ordering) -> u64 {
        if let Some(ctx) = current() {
            let cell = self.cell_id(&ctx);
            if let Some((res, latest)) = op_cycle(&ctx, Op::Rmw { cell, ord }, |st, me| {
                st.apply_rmw(me, cell, ord, ord, &mut |v| Some(v.wrapping_add(n)))
            }) {
                self.fallback.store(latest, Ordering::Relaxed);
                return match res {
                    Ok(prev) => prev,
                    Err(prev) => prev,
                };
            }
        }
        self.fallback.fetch_add(n, ord)
    }

    pub fn fetch_update<F: FnMut(u64) -> Option<u64>>(
        &self,
        set_ord: Ordering,
        fetch_ord: Ordering,
        mut f: F,
    ) -> Result<u64, u64> {
        if let Some(ctx) = current() {
            let cell = self.cell_id(&ctx);
            if let Some((res, latest)) = op_cycle(&ctx, Op::Rmw { cell, ord: set_ord }, |st, me| {
                st.apply_rmw(me, cell, set_ord, fetch_ord, &mut f)
            }) {
                self.fallback.store(latest, Ordering::Relaxed);
                return res;
            }
        }
        self.fallback.fetch_update(set_ord, fetch_ord, f)
    }
}

impl std::fmt::Debug for TrackedU64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrackedU64")
            .field("value", &self.fallback.load(Ordering::Relaxed))
            .finish()
    }
}

/// Atomic fence: a schedule point inside an exploration, a real
/// [`std::sync::atomic::fence`] otherwise.
pub fn fence(ord: Ordering) {
    if let Some(ctx) = current() {
        if op_cycle(&ctx, Op::Fence { ord }, |st, me| st.apply_fence(me, ord)).is_some() {
            return;
        }
    }
    // Facade forwarding: pairing is the caller's obligation, documented
    // at the caller's own fence site.
    // xlint: allow(no-bare-fence)
    std::sync::atomic::fence(ord);
}

/// A model-checked mutex. The real `std` mutex still guards the data in both
/// modes; under exploration the scheduler additionally decides who acquires
/// it (so blocking never happens at the OS level) and records the
/// happens-before edge from unlock to the next lock.
pub struct Mutex<T> {
    inner: StdMutex<T>,
    reg: AtomicU64,
    label: &'static str,
}

pub struct MutexGuard<'a, T> {
    inner: Option<StdMutexGuard<'a, T>>,
    tracked: Option<(Ctx, usize)>,
}

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Self::with_label(t, "")
    }

    pub const fn with_label(t: T, label: &'static str) -> Self {
        Mutex {
            inner: StdMutex::new(t),
            reg: AtomicU64::new(0),
            label,
        }
    }

    fn mutex_id(&self, ctx: &Ctx) -> usize {
        let packed = self.reg.load(Ordering::Relaxed);
        let mut st = ctx.sh.lock();
        if packed != 0 {
            let (ep, id) = unpack_reg(packed);
            if ep == st.epoch & 0xffff_ffff {
                return id;
            }
        }
        let id = st.mutexes.len();
        let label = if self.label.is_empty() {
            format!("m{id}")
        } else {
            self.label.to_string()
        };
        st.mutexes.push(MutexState {
            label,
            owner: None,
            release: VClock::new(),
        });
        self.reg.store(pack_reg(st.epoch, id), Ordering::Relaxed);
        id
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        let tracked = if let Some(ctx) = current() {
            let mid = self.mutex_id(&ctx);
            op_cycle(&ctx, Op::Lock { mutex: mid }, |st, me| {
                st.apply_lock(me, mid)
            })
            .map(|()| (ctx, mid))
        } else {
            None
        };
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard {
            inner: Some(g),
            tracked,
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.inner {
            Some(g) => g,
            None => unreachable!("guard accessed after drop"),
        }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.inner {
            Some(g) => g,
            None => unreachable!("guard accessed after drop"),
        }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first; the model still considers the mutex
        // owned until the Unlock op executes, so no other virtual thread can
        // race in between.
        self.inner.take();
        if let Some((ctx, mid)) = self.tracked.take() {
            let _ = op_cycle(&ctx, Op::Unlock { mutex: mid }, |st, me| {
                st.apply_unlock(me, mid)
            });
        }
    }
}

enum JoinInner {
    Model { sh: Arc<Shared>, tid: usize },
    Os(std::thread::JoinHandle<()>),
}

/// Handle returned by [`spawn`].
pub struct JoinHandle(JoinInner);

impl JoinHandle {
    /// The virtual thread id under exploration (None in fallback mode).
    pub fn tid(&self) -> Option<usize> {
        match &self.0 {
            JoinInner::Model { tid, .. } => Some(*tid),
            JoinInner::Os(_) => None,
        }
    }

    pub fn join(self) {
        match self.0 {
            JoinInner::Os(h) => {
                if let Err(p) = h.join() {
                    std::panic::resume_unwind(p);
                }
            }
            JoinInner::Model { sh, tid } => {
                let ctx = current().expect("mc::JoinHandle::join outside its exploration");
                debug_assert!(Arc::ptr_eq(&ctx.sh, &sh));
                let _ = op_cycle(&ctx, Op::Join { tid }, |st, me| st.apply_join(me, tid));
            }
        }
    }
}

/// Spawn a virtual thread inside an exploration, or a plain OS thread
/// outside one.
pub fn spawn<F: FnOnce() + Send + 'static>(f: F) -> JoinHandle {
    if let Some(ctx) = current() {
        let sh = ctx.sh.clone();
        let tid = {
            let mut st = sh.lock();
            let clock = st.threads[ctx.me].clock.clone();
            let tid = st.threads.len();
            st.threads.push(Th::new(clock, Op::Begin));
            st.push_trace(ctx.me, format!("spawn t{tid}"));
            tid
        };
        let sh2 = sh.clone();
        let handle = std::thread::spawn(move || vthread_main(sh2, tid, f));
        sh.lock().os_handles.push(handle);
        JoinHandle(JoinInner::Model { sh, tid })
    } else {
        JoinHandle(JoinInner::Os(std::thread::spawn(f)))
    }
}
