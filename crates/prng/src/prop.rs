//! A minimal property-test harness: seeded case generation with
//! failure-seed reporting, replacing `proptest` for this workspace.
//!
//! Scope is deliberately small — no shrinking, no strategy combinators —
//! because the workspace's properties only need uniform draws and sized
//! collections. What it keeps from proptest is the part that matters for a
//! hermetic, deterministic build:
//!
//! - **Fixed case counts**: [`check`] runs exactly `cases` cases (override
//!   with `CLAMPI_PROP_CASES`), each with a seed derived deterministically
//!   from a fixed base, so CI runs are reproducible byte-for-byte.
//! - **Failure-seed reporting**: when a case fails, the harness prints the
//!   case's 64-bit seed; re-run just that case with
//!   `CLAMPI_PROP_SEED=<seed>`.
//!
//! # Examples
//!
//! ```
//! use clampi_prng::prop::check;
//!
//! check("reverse twice is identity", 64, |g| {
//!     let v = g.vec(0..20usize, |g| g.range(0..1000u64));
//!     let mut w = v.clone();
//!     w.reverse();
//!     w.reverse();
//!     assert_eq!(v, w);
//! });
//! ```

use crate::{SmallRng, UniformRange};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Per-case generator handed to the property closure: a seeded RNG plus
/// small helpers for the common draw shapes.
#[derive(Debug)]
pub struct Gen {
    rng: SmallRng,
}

impl Gen {
    /// A generator for one case, seeded with `seed`.
    pub fn from_seed(seed: u64) -> Self {
        Gen {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Direct access to the underlying RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// An arbitrary `u64` (the harness's `any::<u64>()`).
    pub fn u64(&mut self) -> u64 {
        self.rng.gen_u64()
    }

    /// An arbitrary `bool` (fair coin).
    pub fn bool(&mut self) -> bool {
        self.rng.gen_u64() & 1 == 1
    }

    /// `true` with probability `p`.
    pub fn bool_with(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }

    /// A uniform draw from `range` (integer or float ranges).
    pub fn range<R: UniformRange>(&mut self, range: R) -> R::Output {
        self.rng.gen_range(range)
    }

    /// A vector whose length is drawn from `len` and whose elements are
    /// produced by `f` (the harness's `collection::vec`).
    pub fn vec<T, L, F>(&mut self, len: L, mut f: F) -> Vec<T>
    where
        L: UniformRange<Output = usize>,
        F: FnMut(&mut Gen) -> T,
    {
        let n = self.rng.gen_range(len);
        (0..n).map(|_| f(self)).collect()
    }
}

/// Base seed for deriving per-case seeds; fixed so CI is reproducible.
const BASE_SEED: u64 = 0xC1A3_0CAC_4E5E_ED01;

/// Runs `property` for `cases` deterministic cases, panicking with the
/// failing case's seed on the first failure.
///
/// Environment overrides:
///
/// - `CLAMPI_PROP_SEED=<u64>` (decimal or `0x…` hex): run exactly one case
///   with that seed — the replay knob printed on failure.
/// - `CLAMPI_PROP_CASES=<n>`: override the case count (e.g. a long soak).
pub fn check<F>(name: &str, cases: u64, mut property: F)
where
    F: FnMut(&mut Gen),
{
    if let Some(seed) = env_seed() {
        eprintln!("property '{name}': replaying single case with seed {seed:#x}");
        run_case(name, 0, seed, &mut property);
        return;
    }
    let cases = env_cases().unwrap_or(cases);
    // Each property gets its own seed stream, offset by the property name,
    // so adding a property never shifts the cases of its neighbours.
    let mut stream = crate::SplitMix64::new(BASE_SEED ^ fnv1a(name.as_bytes()));
    for case in 0..cases {
        let seed = stream.next_u64();
        run_case(name, case, seed, &mut property);
    }
}

fn run_case<F: FnMut(&mut Gen)>(name: &str, case: u64, seed: u64, property: &mut F) {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut g = Gen::from_seed(seed);
        property(&mut g);
    }));
    if let Err(payload) = result {
        eprintln!(
            "property '{name}' failed at case {case} (seed {seed:#018x}); \
             replay with CLAMPI_PROP_SEED={seed}"
        );
        resume_unwind(payload);
    }
}

fn env_seed() -> Option<u64> {
    let v = std::env::var("CLAMPI_PROP_SEED").ok()?;
    parse_u64(&v)
}

fn env_cases() -> Option<u64> {
    let v = std::env::var("CLAMPI_PROP_CASES").ok()?;
    parse_u64(&v)
}

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let counted = std::cell::Cell::new(0u64);
        check("counts", 17, |g| {
            let _ = g.u64();
            counted.set(counted.get() + 1);
        });
        assert_eq!(counted.get(), 17);
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let collect = || {
            let mut seen = Vec::new();
            check("det", 8, |g| seen.push(g.u64()));
            seen
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn different_properties_get_different_streams() {
        let mut a = Vec::new();
        check("stream-a", 4, |g| a.push(g.u64()));
        let mut b = Vec::new();
        check("stream-b", 4, |g| b.push(g.u64()));
        assert_ne!(a, b);
    }

    #[test]
    fn failing_property_reports_and_propagates() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check("always-fails", 10, |_| panic!("boom"));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn vec_lengths_respect_range() {
        check("vec-len", 32, |g| {
            let v = g.vec(2..6usize, |g| g.range(0..10u64));
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        });
    }
}
