//! Deterministic, dependency-free pseudo-randomness for the CLaMPI
//! reproduction.
//!
//! The workspace must build and test with an **empty cargo registry** (no
//! network), so it cannot depend on the `rand` ecosystem. Everything the
//! reproduction needs — a seedable uniform generator driving the Cuckoo
//! hashers, victim sampling, and the workload generators (Zipf, R-MAT,
//! Plummer) — fits in this small crate:
//!
//! - [`SplitMix64`]: the stateless-feeling 64-bit mixer of Steele et al.,
//!   used to expand a single `u64` seed into generator state (the same
//!   seeding discipline `rand`'s `SmallRng::seed_from_u64` uses).
//! - [`Xoshiro256StarStar`] (aliased [`SmallRng`]): Blackman & Vigna's
//!   xoshiro256\*\* — 256 bits of state, period `2^256 - 1`, passes
//!   BigCrush, and is the generator family behind `rand`'s `SmallRng` on
//!   64-bit targets.
//!
//! Determinism is load-bearing: every figure binary takes a `--seed`, and
//! byte-identical reruns are what make the reproduced figures comparable
//! run-to-run and regression-testable (see the golden-value tests in
//! `clampi-workloads`). The algorithms here are frozen; changing them is a
//! *distribution change* that must update those golden tests.
//!
//! The [`prop`] module builds a minimal property-test harness (seeded case
//! generation, fixed case counts, failure-seed reporting) on top of the
//! generator, replacing `proptest` for this workspace's needs.

#![warn(missing_docs)]

pub mod prop;

/// SplitMix64 (Steele, Lea, Flood — OOPSLA 2014): a tiny 64-bit generator
/// whose main job here is *seed expansion*: filling larger generator state
/// from one `u64` so that similar seeds yield uncorrelated streams.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded with `seed` (any value, including 0, is fine).
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* (Blackman & Vigna, 2018): the workspace's only PRNG.
///
/// # Examples
///
/// ```
/// use clampi_prng::SmallRng;
///
/// let mut rng = SmallRng::seed_from_u64(42);
/// let a = rng.gen_u64();
/// let b = rng.gen_range(0..10usize);
/// let p = rng.gen_f64();
/// assert!(b < 10);
/// assert!((0.0..1.0).contains(&p));
/// // Same seed, same stream.
/// assert_eq!(SmallRng::seed_from_u64(42).gen_u64(), a);
/// ```
#[derive(Debug, Clone)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

/// The workspace's drop-in name for its small fast RNG (mirrors
/// `rand::rngs::SmallRng`, which is also xoshiro-family on 64-bit).
pub type SmallRng = Xoshiro256StarStar;

impl Xoshiro256StarStar {
    /// Seeds the full 256-bit state from one `u64` through a [`SplitMix64`]
    /// stream — the constructor shape of `rand`'s `SeedableRng`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        // SplitMix64 never yields four consecutive zeros, so the all-zero
        // state (the one fixed point of xoshiro) is unreachable.
        Xoshiro256StarStar {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn gen_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    pub fn gen_f64(&mut self) -> f64 {
        (self.gen_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped into `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p.is_nan() || p <= 0.0 {
            return false;
        }
        self.gen_f64() < p
    }

    /// A uniform value in `range` — accepts the same half-open and
    /// inclusive integer ranges and half-open float ranges the call sites
    /// used with `rand::Rng::gen_range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Unbiased uniform draw in `[0, n)` via Lemire's widening-multiply
    /// rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        let mut x = self.gen_u64();
        let mut m = (x as u128) * (n as u128);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.gen_u64();
                m = (x as u128) * (n as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// A range shape [`Xoshiro256StarStar::gen_range`] can sample uniformly.
pub trait UniformRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut Xoshiro256StarStar) -> Self::Output;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Xoshiro256StarStar) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.gen_below(span) as $t
            }
        }
        impl UniformRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Xoshiro256StarStar) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.gen_u64() as $t;
                }
                lo + rng.gen_below(span + 1) as $t
            }
        }
    )*};
}

impl_uniform_int!(u32, u64, usize);

impl UniformRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Xoshiro256StarStar) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + rng.gen_f64() * (self.end - self.start);
        // Guard the end against rounding when the span is tiny.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference stream for seed 0 (Vigna's splitmix64.c).
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..32).map(|_| r.gen_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..32).map(|_| r.gen_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(8);
            (0..32).map(|_| r.gen_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert!((3..17usize).contains(&r.gen_range(3..17usize)));
            assert!((0..=16u32).contains(&r.gen_range(0..=16u32)));
            let f = r.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f), "{f}");
        }
    }

    #[test]
    fn range_draws_hit_every_value() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn integer_draws_are_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(4);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = SmallRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(f64::NAN), "NaN probability must not panic");
    }

    #[test]
    fn single_value_inclusive_range() {
        let mut r = SmallRng::seed_from_u64(6);
        assert_eq!(r.gen_range(9..=9u32), 9);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        SmallRng::seed_from_u64(0).gen_range(5..5usize);
    }
}
