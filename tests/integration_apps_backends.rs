//! Cross-backend application equivalence: every caching layer must be
//! invisible to application results, and virtual time must be a pure
//! function of the inputs (no wall-clock leakage).

use clampi_repro::clampi::{BlockCacheConfig, CacheParams, ClampiConfig, Mode};
use clampi_repro::clampi_apps::{
    force_phase, lcc_phase, pagerank, sequential_pagerank, Backend, BhConfig, LccConfig, PrConfig,
};
use clampi_repro::clampi_rma::{run_collect, SimConfig};
use clampi_repro::clampi_workloads::{plummer, Csr, RmatParams};

fn backends() -> Vec<Backend> {
    vec![
        Backend::Fompi,
        Backend::Native(BlockCacheConfig::default()),
        Backend::Clampi(ClampiConfig::fixed(
            Mode::UserDefined,
            CacheParams::default(),
        )),
        Backend::Clampi(ClampiConfig::adaptive(
            Mode::UserDefined,
            CacheParams {
                index_entries: 256, // deliberately poor start
                storage_bytes: 256 << 10,
                ..CacheParams::default()
            },
        )),
    ]
}

#[test]
fn barnes_hut_checksum_is_backend_invariant() {
    let bodies = plummer(250, 41);
    let mut checksums = Vec::new();
    for backend in backends() {
        let cfg = BhConfig::with_backend(backend.clone());
        let out = run_collect(SimConfig::default(), 3, |p| force_phase(p, &bodies, &cfg));
        let sum: f64 = out.iter().map(|(_, r)| r.force_checksum).sum();
        checksums.push((backend.label(), sum));
    }
    let (_, reference) = checksums[0];
    for (label, sum) in &checksums {
        assert_eq!(*sum, reference, "backend {label} changed the physics");
    }
}

#[test]
fn lcc_is_backend_invariant() {
    let g = Csr::rmat(RmatParams::graph500(8, 8), 43);
    let reference: f64 = (0..g.num_vertices()).map(|v| g.lcc(v)).sum();
    for backend in backends() {
        let label = backend.label();
        let mode_fixed = match &backend {
            // LCC's graph is immutable: always-cache is the right mode.
            Backend::Clampi(c) => Backend::Clampi(ClampiConfig {
                mode: Mode::AlwaysCache,
                ..c.clone()
            }),
            other => other.clone(),
        };
        let cfg = LccConfig::with_backend(mode_fixed);
        let out = run_collect(SimConfig::default(), 3, |p| lcc_phase(p, &g, &cfg));
        let got: f64 = out.iter().map(|(_, r)| r.lcc_sum).sum();
        assert!(
            (got - reference).abs() < 1e-9,
            "backend {label}: {got} vs {reference}"
        );
    }
}

#[test]
fn pagerank_is_backend_invariant() {
    let g = Csr::rmat(RmatParams::graph500(8, 8), 45);
    let reference = sequential_pagerank(&g, 0.85, 6);
    for backend in backends() {
        let label = backend.label();
        let mut cfg = PrConfig::with_backend(backend);
        cfg.iterations = 6;
        let out = run_collect(SimConfig::default(), 3, |p| pagerank(p, &g, &cfg));
        let mut got = vec![0.0; g.num_vertices()];
        for (_, r) in &out {
            got[r.lo..r.lo + r.scores.len()].copy_from_slice(&r.scores);
        }
        let err = got
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(err < 1e-12, "backend {label}: max err {err}");
    }
}

#[test]
fn virtual_time_of_apps_is_reproducible() {
    // Two identical runs must report identical virtual times — any
    // divergence means wall-clock scheduling leaked into the model.
    let bodies = plummer(150, 47);
    let cfg = BhConfig::with_backend(Backend::Clampi(ClampiConfig::fixed(
        Mode::UserDefined,
        CacheParams::default(),
    )));
    let run_once = || {
        run_collect(SimConfig::default(), 4, |p| force_phase(p, &bodies, &cfg))
            .into_iter()
            .map(|(_, r)| r.force_time_ns)
            .collect::<Vec<_>>()
    };
    assert_eq!(run_once(), run_once(), "virtual time not reproducible");
}

#[test]
fn cache_pressure_does_not_change_results() {
    // Pathologically small cache: constant conflicts, capacity misses and
    // failures — and identical physics.
    let bodies = plummer(200, 49);
    let tiny = BhConfig::with_backend(Backend::Clampi(ClampiConfig::fixed(
        Mode::UserDefined,
        CacheParams {
            index_entries: 8,
            storage_bytes: 1 << 10,
            max_insert_iters: 4,
            ..CacheParams::default()
        },
    )));
    let plain = BhConfig::with_backend(Backend::Fompi);
    let a = run_collect(SimConfig::default(), 2, |p| force_phase(p, &bodies, &tiny));
    let b = run_collect(SimConfig::default(), 2, |p| force_phase(p, &bodies, &plain));
    let sa: f64 = a.iter().map(|(_, r)| r.force_checksum).sum();
    let sb: f64 = b.iter().map(|(_, r)| r.force_checksum).sum();
    assert_eq!(sa, sb);
    // The tiny cache really was under pressure.
    let stats = a[0].1.clampi_stats.unwrap();
    assert!(
        stats.conflicting + stats.capacity + stats.failed > 0,
        "pressure scenario produced no evictions: {stats:?}"
    );
}
