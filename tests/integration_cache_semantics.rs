//! Cross-crate integration tests: CLaMPI's consistency semantics over the
//! RMA simulator (the paper's Sec. II/III-A contract).

use clampi_repro::clampi::{AccessType, CacheParams, CachedWindow, ClampiConfig, Mode};
use clampi_repro::clampi_datatype::Datatype;
use clampi_repro::clampi_rma::{run, run_collect, LockKind, SimConfig};

fn cfg(mode: Mode) -> ClampiConfig {
    ClampiConfig::fixed(
        mode,
        CacheParams {
            index_entries: 1024,
            storage_bytes: 1 << 20,
            ..CacheParams::default()
        },
    )
}

#[test]
fn transparent_mode_never_serves_stale_data() {
    // Writer updates its window between epochs; a transparent-mode reader
    // must observe every update (the cache dies at each epoch closure).
    run(SimConfig::checked(), 2, |p| {
        let mut win = CachedWindow::create(p, 64, cfg(Mode::Transparent));
        for round in 0..5u8 {
            if p.rank() == 1 {
                win.local_mut()[..4].copy_from_slice(&[round; 4]);
            }
            p.barrier();
            if p.rank() == 0 {
                win.lock(p, LockKind::Shared, 1);
                let mut buf = [0u8; 4];
                let class = win.get(p, &mut buf, 1, 0, &Datatype::bytes(4), 1);
                win.flush(p, 1);
                assert_eq!(buf, [round; 4], "stale data in round {round}");
                assert_ne!(
                    class,
                    Some(AccessType::Hit),
                    "transparent mode must not hit across epochs"
                );
                win.unlock(p, 1);
            }
            p.barrier();
        }
    });
}

#[test]
fn always_cache_hits_across_epochs() {
    run(SimConfig::checked(), 2, |p| {
        let mut win = CachedWindow::create(p, 64, cfg(Mode::AlwaysCache));
        if p.rank() == 1 {
            win.local_mut()[..8].copy_from_slice(b"constant");
        }
        p.barrier();
        if p.rank() == 0 {
            win.lock_all(p);
            let mut buf = [0u8; 8];
            win.get(p, &mut buf, 1, 0, &Datatype::bytes(8), 1);
            win.flush(p, 1);
            for _ in 0..10 {
                let class = win.get(p, &mut buf, 1, 0, &Datatype::bytes(8), 1);
                assert_eq!(class, Some(AccessType::Hit));
                assert_eq!(&buf, b"constant");
                win.flush(p, 1); // epoch closures do not invalidate
            }
            assert_eq!(win.stats().hits, 10);
            win.unlock_all(p);
        }
        p.barrier();
    });
}

#[test]
fn user_defined_invalidate_ends_the_read_only_phase() {
    // Listing 1 of the paper: a block of read-only epochs, then
    // CLAMPI_Invalidate, then the data may change.
    run(SimConfig::checked(), 2, |p| {
        let mut win = CachedWindow::create(p, 64, cfg(Mode::UserDefined));
        if p.rank() == 1 {
            win.local_mut()[..4].copy_from_slice(&[1; 4]);
        }
        p.barrier();
        if p.rank() == 0 {
            win.lock(p, LockKind::Shared, 1);
            let mut buf = [0u8; 4];
            win.get(p, &mut buf, 1, 0, &Datatype::bytes(4), 1);
            win.flush(p, 1);
            let class = win.get(p, &mut buf, 1, 0, &Datatype::bytes(4), 1);
            assert_eq!(class, Some(AccessType::Hit));
            win.invalidate(p);
            win.unlock(p, 1);
        }
        p.barrier();
        // Phase 2: the writer changes the data; the reader must re-fetch.
        if p.rank() == 1 {
            win.local_mut()[..4].copy_from_slice(&[2; 4]);
        }
        p.barrier();
        if p.rank() == 0 {
            win.lock(p, LockKind::Shared, 1);
            let mut buf = [0u8; 4];
            let class = win.get(p, &mut buf, 1, 0, &Datatype::bytes(4), 1);
            win.flush(p, 1);
            assert_ne!(class, Some(AccessType::Hit));
            assert_eq!(buf, [2; 4]);
            win.unlock(p, 1);
        }
        p.barrier();
    });
}

#[test]
fn cached_and_plain_gets_agree_bytewise() {
    // Random-ish access pattern: every cached read must equal the plain
    // RMA read, whatever the hit/miss/eviction sequence was.
    let out = run_collect(SimConfig::checked(), 3, |p| {
        let mut cached = CachedWindow::create(
            p,
            4096,
            ClampiConfig::fixed(
                Mode::AlwaysCache,
                CacheParams {
                    index_entries: 32,       // force conflicts
                    storage_bytes: 16 << 10, // force capacity pressure
                    ..CacheParams::default()
                },
            ),
        );
        let mut plain = CachedWindow::create(p, 4096, ClampiConfig::disabled());
        {
            let mut a = cached.local_mut();
            let mut b = plain.local_mut();
            for (i, (x, y)) in a.iter_mut().zip(b.iter_mut()).enumerate() {
                let v = (i as u8).wrapping_mul(p.rank() as u8 + 3);
                *x = v;
                *y = v;
            }
        }
        p.barrier();
        cached.lock_all(p);
        plain.lock_all(p);
        let mut mismatches = 0;
        let mut state = 0x9E3779B97F4A7C15u64 ^ p.rank() as u64;
        for _ in 0..500 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let target = (state >> 8) as usize % p.nranks();
            let disp = (state >> 16) as usize % 3800;
            let len = 1 + (state >> 32) as usize % (4096 - disp).min(600);
            let dt = Datatype::bytes(len);
            let mut a = vec![0u8; len];
            let mut b = vec![1u8; len];
            let class = cached.get(p, &mut a, target, disp, &dt, 1);
            if class != Some(AccessType::Hit) {
                cached.flush(p, target);
            }
            plain.get(p, &mut b, target, disp, &dt, 1);
            plain.flush(p, target);
            if a != b {
                mismatches += 1;
            }
        }
        cached.unlock_all(p);
        plain.unlock_all(p);
        p.barrier();
        (mismatches, cached.stats())
    });
    for (rep, (mismatches, stats)) in &out {
        assert_eq!(*mismatches, 0, "rank {} saw divergent reads", rep.rank);
        assert!(stats.total_gets >= 500);
        // The stress parameters must actually have exercised evictions.
        assert!(
            stats.conflicting + stats.capacity + stats.failed > 0,
            "rank {}: stress run produced no evictions: {stats:?}",
            rep.rank
        );
    }
}

#[test]
fn adaptive_run_is_deterministic() {
    let run_once = || {
        run_collect(SimConfig::checked(), 2, |p| {
            let mut win = CachedWindow::create(
                p,
                1 << 16,
                ClampiConfig::adaptive(
                    Mode::AlwaysCache,
                    CacheParams {
                        index_entries: 64,
                        storage_bytes: 8 << 10,
                        ..CacheParams::default()
                    },
                ),
            );
            p.barrier();
            if p.rank() == 0 {
                win.lock_all(p);
                let mut buf = vec![0u8; 512];
                for i in 0..5000usize {
                    let disp = (i * 7919) % ((1 << 16) - 512);
                    let class = win.get(p, &mut buf, 1, disp, &Datatype::bytes(512), 1);
                    if class != Some(AccessType::Hit) {
                        win.flush(p, 1);
                    }
                }
                win.unlock_all(p);
            }
            p.barrier();
            (win.stats(), p.now())
        })
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(
        a[0].1 .0, b[0].1 .0,
        "stats diverged between identical runs"
    );
    assert_eq!(a[0].1 .1, b[0].1 .1, "virtual time diverged");
}

#[test]
fn disabled_mode_is_pure_passthrough() {
    let out = run_collect(SimConfig::checked(), 2, |p| {
        let mut win = CachedWindow::create(p, 256, ClampiConfig::disabled());
        if p.rank() == 1 {
            win.local_mut()[100] = 42;
        }
        p.barrier();
        let mut hit = None;
        if p.rank() == 0 {
            win.lock_all(p);
            let mut b = [0u8; 1];
            hit = win.get(p, &mut b, 1, 100, &Datatype::bytes(1), 1);
            win.flush(p, 1);
            assert_eq!(b[0], 42);
            win.unlock_all(p);
        }
        p.barrier();
        (hit, win.stats().total_gets)
    });
    assert_eq!(out[0].1 .0, None, "disabled mode must not classify");
    assert_eq!(out[0].1 .1, 0, "disabled mode must not count");
}

#[test]
fn two_windows_have_independent_caches() {
    run(SimConfig::checked(), 2, |p| {
        let mut w1 = CachedWindow::create(p, 64, cfg(Mode::AlwaysCache));
        let mut w2 = CachedWindow::create(p, 64, cfg(Mode::AlwaysCache));
        if p.rank() == 1 {
            w1.local_mut()[..2].copy_from_slice(&[1, 1]);
            w2.local_mut()[..2].copy_from_slice(&[2, 2]);
        }
        p.barrier();
        if p.rank() == 0 {
            w1.lock_all(p);
            w2.lock_all(p);
            let mut b = [0u8; 2];
            w1.get(p, &mut b, 1, 0, &Datatype::bytes(2), 1);
            w1.flush(p, 1);
            assert_eq!(b, [1, 1]);
            // Same (target, disp) key on the other window: must miss and
            // fetch the other window's bytes.
            let class = w2.get(p, &mut b, 1, 0, &Datatype::bytes(2), 1);
            w2.flush(p, 1);
            assert_ne!(class, Some(AccessType::Hit));
            assert_eq!(b, [2, 2]);
            w1.unlock_all(p);
            w2.unlock_all(p);
        }
        p.barrier();
    });
}

#[test]
fn partial_hits_extend_through_the_window_api() {
    run(SimConfig::checked(), 2, |p| {
        let mut win = CachedWindow::create(p, 1024, cfg(Mode::AlwaysCache));
        if p.rank() == 1 {
            let mut m = win.local_mut();
            for (i, b) in m.iter_mut().enumerate() {
                *b = i as u8;
            }
        }
        p.barrier();
        if p.rank() == 0 {
            win.lock_all(p);
            let mut small = [0u8; 100];
            win.get(p, &mut small, 1, 0, &Datatype::bytes(100), 1);
            win.flush(p, 1);
            // Larger request at the same displacement: partial hit.
            let mut big = [0u8; 300];
            let class = win.get(p, &mut big, 1, 0, &Datatype::bytes(300), 1);
            win.flush(p, 1);
            assert_ne!(class, Some(AccessType::Hit));
            for (i, &b) in big.iter().enumerate() {
                assert_eq!(b, i as u8, "byte {i}");
            }
            assert_eq!(win.stats().partial_hits, 1);
            // And now the big one hits.
            let class = win.get(p, &mut big, 1, 0, &Datatype::bytes(300), 1);
            assert_eq!(class, Some(AccessType::Hit));
            win.unlock_all(p);
        }
        p.barrier();
    });
}
