//! Property-based tests on the core invariants of the caching layer.
//!
//! The headline property is *transparency*: for any sequence of gets, a
//! CLaMPI window returns byte-for-byte the same data as a plain RMA
//! window, whatever internal hit/miss/eviction path each access took.

use clampi_repro::clampi::cache::{CacheParams, LayoutSig, Lookup, RmaCache};
use clampi_repro::clampi::index::{CuckooIndex, GetKey, InsertOutcome};
use clampi_repro::clampi::storage::Storage;
use clampi_repro::clampi::{AccessType, CacheCostModel, CachedWindow, ClampiConfig, Mode, VictimScheme};
use clampi_repro::clampi_datatype::Datatype;
use clampi_repro::clampi_rma::{run_collect, SimConfig};
use proptest::prelude::*;
use std::collections::HashMap;

/// One get in a generated access pattern.
#[derive(Debug, Clone, Copy)]
struct Access {
    disp: usize,
    len: usize,
}

fn arb_accesses(win_size: usize, max_len: usize) -> impl Strategy<Value = Vec<Access>> {
    proptest::collection::vec(
        (0..win_size - 1, 1..max_len).prop_map(move |(disp, len)| Access {
            disp,
            len: len.min(win_size - disp),
        }),
        1..120,
    )
}

fn arb_params() -> impl Strategy<Value = CacheParams> {
    (
        1usize..256,              // index entries (tiny -> conflicts)
        256usize..32_768,         // storage bytes (tiny -> capacity/failing)
        prop_oneof![
            Just(VictimScheme::Full),
            Just(VictimScheme::Temporal),
            Just(VictimScheme::Positional)
        ],
        any::<u64>(),
    )
        .prop_map(|(index_entries, storage_bytes, victim_scheme, seed)| CacheParams {
            index_entries,
            storage_bytes,
            victim_scheme,
            seed,
            costs: CacheCostModel::free(),
            ..CacheParams::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cached reads always equal plain reads, under arbitrary access
    /// patterns and adversarially small cache parameters.
    #[test]
    fn cached_reads_equal_plain_reads(
        accesses in arb_accesses(2048, 512),
        params in arb_params(),
        epoch_every in 1usize..8,
    ) {
        const WIN: usize = 2048;
        let out = run_collect(SimConfig::checked(), 2, |p| {
            let mut win = CachedWindow::create(
                p,
                WIN,
                ClampiConfig::fixed(Mode::AlwaysCache, params.clone()),
            );
            if p.rank() == 1 {
                let mut m = win.local_mut();
                for (i, b) in m.iter_mut().enumerate() {
                    *b = (i as u8).wrapping_mul(31).wrapping_add(7);
                }
            }
            p.barrier();
            let mut bad = None;
            if p.rank() == 0 {
                win.lock_all(p);
                for (k, a) in accesses.iter().enumerate() {
                    let mut buf = vec![0u8; a.len];
                    let class = win.get(p, &mut buf, 1, a.disp, &Datatype::bytes(a.len), 1);
                    if class != Some(AccessType::Hit) && k % epoch_every == 0 {
                        win.flush(p, 1);
                    }
                    for (j, &b) in buf.iter().enumerate() {
                        let want = ((a.disp + j) as u8).wrapping_mul(31).wrapping_add(7);
                        if b != want {
                            bad = Some((k, j, b, want));
                            break;
                        }
                    }
                }
                win.unlock_all(p);
            }
            p.barrier();
            bad
        });
        prop_assert_eq!(out[0].1, None, "cached read diverged from window contents");
    }

    /// The Cuckoo index behaves like a map: differential test against
    /// HashMap under interleaved insert/remove/lookup.
    #[test]
    fn cuckoo_matches_hashmap(ops in proptest::collection::vec((0u8..3, 0u64..64), 1..300), seed in any::<u64>()) {
        let mut ix = CuckooIndex::new(128, 32, seed);
        let mut model: HashMap<u64, u32> = HashMap::new();
        let mut next_id = 0u32;
        let mut homeless: Option<u64> = None;
        for (op, d) in ops {
            // After a Cycle one resident is homeless; drop it from the
            // model exactly like the engine drops it from the cache.
            match op {
                0 => {
                    let k = GetKey { target: 0, disp: d };
                    if model.contains_key(&d) || homeless == Some(d) {
                        continue; // no duplicate inserts
                    }
                    match ix.insert(k, next_id) {
                        InsertOutcome::Placed { .. } => {
                            model.insert(d, next_id);
                        }
                        InsertOutcome::Cycle { homeless: (hk, he), .. } => {
                            // Everyone but the homeless pair is resident.
                            model.insert(d, next_id);
                            model.remove(&hk.disp);
                            let _ = he;
                            homeless = Some(hk.disp);
                        }
                    }
                    next_id += 1;
                }
                1 => {
                    let k = GetKey { target: 0, disp: d };
                    let got = ix.remove(&k);
                    let want = model.remove(&d);
                    prop_assert_eq!(got, want, "remove({}) mismatch", d);
                }
                _ => {
                    let k = GetKey { target: 0, disp: d };
                    let got = ix.lookup(&k);
                    let want = model.get(&d).copied();
                    prop_assert_eq!(got, want, "lookup({}) mismatch", d);
                }
            }
            prop_assert_eq!(ix.len(), model.len());
        }
    }

    /// The storage allocator never corrupts its structures and never loses
    /// bytes, under arbitrary alloc/free interleavings.
    #[test]
    fn storage_invariants_hold(ops in proptest::collection::vec((any::<bool>(), 1usize..600), 1..250)) {
        let mut s = Storage::new(8192);
        let mut live: Vec<(clampi_repro::clampi::storage::DescId, Vec<u8>)> = Vec::new();
        let mut stamp = 0u8;
        for (do_alloc, size) in ops {
            if do_alloc || live.is_empty() {
                if let Some(id) = s.alloc(size, 0) {
                    stamp = stamp.wrapping_add(1);
                    let data = vec![stamp; size];
                    s.write(id, &data);
                    live.push((id, data));
                }
            } else {
                let k = size % live.len();
                let (id, data) = live.swap_remove(k);
                // The region still holds exactly what was written.
                prop_assert_eq!(s.read(id, data.len()), &data[..]);
                s.free(id);
            }
            s.check_invariants();
        }
        // Free everything: the buffer must return to one free region.
        for (id, data) in live {
            prop_assert_eq!(s.read(id, data.len()), &data[..]);
            s.free(id);
        }
        s.check_invariants();
        prop_assert_eq!(s.free_bytes(), 8192);
        prop_assert_eq!(s.largest_free_region(), 8192);
    }

    /// The engine's bookkeeping stays coherent under random workloads:
    /// classifications partition the gets, residency matches the index,
    /// and epoch closes promote exactly the pending entries.
    #[test]
    fn engine_accounting_is_coherent(
        accesses in arb_accesses(4096, 256),
        params in arb_params(),
    ) {
        let mut c = RmaCache::new(params);
        for (k, a) in accesses.iter().enumerate() {
            let key = GetKey { target: 9, disp: a.disp as u64 };
            let sig = LayoutSig::Contig(a.len);
            let data = vec![0xAB; a.len];
            let mut dst = vec![0u8; a.len];
            match c.process_lookup(key, &sig, &mut dst) {
                Lookup::Miss => {
                    c.finish_miss(key, sig, &data);
                }
                Lookup::PartialHit { .. } => {
                    c.finish_partial(key, sig, &data);
                }
                Lookup::Hit => {}
            }
            if k % 5 == 0 {
                c.epoch_close();
            }
        }
        c.epoch_close();
        let s = *c.stats();
        prop_assert_eq!(
            s.total_gets,
            s.hits + s.direct + s.conflicting + s.capacity + s.failed,
            "classification must partition the gets"
        );
        prop_assert_eq!(s.total_gets as usize, accesses.len());
        prop_assert_eq!(c.cached_entries(), c.len(), "all entries CACHED after close");
        prop_assert!(c.len() <= c.params().index_entries);
        c.invalidate();
        prop_assert!(c.is_empty());
        prop_assert_eq!(c.free_bytes(), c.params().storage_bytes);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The native block cache is equally transparent: block-cached reads
    /// equal plain reads under arbitrary patterns and block sizes.
    #[test]
    fn blockcache_reads_equal_plain_reads(
        accesses in arb_accesses(1024, 200),
        block_pow in 5u32..10, // 32..512 B blocks
        mem_kb in 1usize..8,
    ) {
        use clampi_repro::clampi::{BlockCacheConfig, BlockCachedWindow};
        const WIN: usize = 1024;
        let cfg = BlockCacheConfig {
            block_size: 1 << block_pow,
            memory_bytes: mem_kb << 10,
            ..BlockCacheConfig::default()
        };
        let out = run_collect(SimConfig::checked(), 2, |p| {
            let mut win = BlockCachedWindow::create(p, WIN, cfg.clone());
            if p.rank() == 1 {
                let mut m = win.local_mut();
                for (i, b) in m.iter_mut().enumerate() {
                    *b = (i as u8).wrapping_mul(13).wrapping_add(3);
                }
            }
            p.barrier();
            let mut bad = None;
            if p.rank() == 0 {
                win.lock_all(p);
                for (k, a) in accesses.iter().enumerate() {
                    let mut buf = vec![0u8; a.len];
                    win.get(p, &mut buf, 1, a.disp, &Datatype::bytes(a.len), 1);
                    for (j, &b) in buf.iter().enumerate() {
                        let want = ((a.disp + j) as u8).wrapping_mul(13).wrapping_add(3);
                        if b != want {
                            bad = Some((k, j));
                            break;
                        }
                    }
                }
                win.unlock_all(p);
            }
            p.barrier();
            bad
        });
        prop_assert_eq!(out[0].1, None, "block-cached read diverged");
    }

    /// Trace replay is deterministic and its classification partitions the
    /// gets for arbitrary traces.
    #[test]
    fn trace_replay_partitions_and_is_deterministic(
        events in proptest::collection::vec((0u8..10, 0u64..64, 1u32..600), 1..150),
        params in arb_params(),
    ) {
        use clampi_repro::clampi::trace::{replay, ReplayCosts, Trace};
        let mut t = Trace::new();
        for (kind, d, size) in events {
            match kind {
                0 => t.epoch_close(),
                1 => t.invalidate(),
                _ => t.get(0, d * 64, size),
            }
        }
        let a = replay(&t, params.clone(), ReplayCosts::default());
        let b = replay(&t, params, ReplayCosts::default());
        prop_assert_eq!(a.stats, b.stats);
        prop_assert_eq!(a.completion_ns, b.completion_ns);
        let s = a.stats;
        prop_assert_eq!(
            s.total_gets,
            s.hits + s.direct + s.conflicting + s.capacity + s.failed
        );
        prop_assert_eq!(s.total_gets as usize, t.num_gets());
    }
}
