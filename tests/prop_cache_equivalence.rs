//! Property-based tests on the core invariants of the caching layer
//! (in-tree harness).
//!
//! The headline property is *transparency*: for any sequence of gets, a
//! CLaMPI window returns byte-for-byte the same data as a plain RMA
//! window, whatever internal hit/miss/eviction path each access took.

use clampi_repro::clampi::cache::{CacheParams, LayoutSig, Lookup, RmaCache};
use clampi_repro::clampi::index::{CuckooIndex, GetKey, InsertOutcome};
use clampi_repro::clampi::storage::Storage;
use clampi_repro::clampi::{
    AccessType, CacheCostModel, CachedWindow, ClampiConfig, Mode, VictimScheme,
};
use clampi_repro::clampi_datatype::Datatype;
use clampi_repro::clampi_prng::prop::{check, Gen};
use clampi_repro::clampi_rma::{run_collect, SimConfig};
use std::collections::HashMap;

/// One get in a generated access pattern.
#[derive(Debug, Clone, Copy)]
struct Access {
    disp: usize,
    len: usize,
}

fn arb_accesses(g: &mut Gen, win_size: usize, max_len: usize) -> Vec<Access> {
    g.vec(1..120usize, |g| {
        let disp = g.range(0..win_size - 1);
        let len = g.range(1..max_len);
        Access {
            disp,
            len: len.min(win_size - disp),
        }
    })
}

fn arb_params(g: &mut Gen) -> CacheParams {
    let victim_scheme = match g.range(0..3u32) {
        0 => VictimScheme::Full,
        1 => VictimScheme::Temporal,
        _ => VictimScheme::Positional,
    };
    CacheParams {
        index_entries: g.range(1..256usize),      // tiny -> conflicts
        storage_bytes: g.range(256..32_768usize), // tiny -> capacity/failing
        victim_scheme,
        seed: g.u64(),
        costs: CacheCostModel::free(),
        ..CacheParams::default()
    }
}

/// Cached reads always equal plain reads, under arbitrary access patterns
/// and adversarially small cache parameters.
#[test]
fn cached_reads_equal_plain_reads() {
    check("cached reads equal plain reads", 48, |g| {
        const WIN: usize = 2048;
        let accesses = arb_accesses(g, WIN, 512);
        let params = arb_params(g);
        let epoch_every = g.range(1..8usize);
        let out = run_collect(SimConfig::checked(), 2, |p| {
            let mut win = CachedWindow::create(
                p,
                WIN,
                ClampiConfig::fixed(Mode::AlwaysCache, params.clone()),
            );
            if p.rank() == 1 {
                let mut m = win.local_mut();
                for (i, b) in m.iter_mut().enumerate() {
                    *b = (i as u8).wrapping_mul(31).wrapping_add(7);
                }
            }
            p.barrier();
            let mut bad = None;
            if p.rank() == 0 {
                win.lock_all(p);
                for (k, a) in accesses.iter().enumerate() {
                    let mut buf = vec![0u8; a.len];
                    let class = win.get(p, &mut buf, 1, a.disp, &Datatype::bytes(a.len), 1);
                    if class != Some(AccessType::Hit) && k % epoch_every == 0 {
                        win.flush(p, 1);
                    }
                    for (j, &b) in buf.iter().enumerate() {
                        let want = ((a.disp + j) as u8).wrapping_mul(31).wrapping_add(7);
                        if b != want {
                            bad = Some((k, j, b, want));
                            break;
                        }
                    }
                }
                win.unlock_all(p);
            }
            p.barrier();
            bad
        });
        assert_eq!(out[0].1, None, "cached read diverged from window contents");
    });
}

/// The Cuckoo index behaves like a map: differential test against HashMap
/// under interleaved insert/remove/lookup.
#[test]
fn cuckoo_matches_hashmap() {
    check("cuckoo index matches HashMap", 48, |g| {
        let ops = g.vec(1..300usize, |g| (g.range(0..3u32) as u8, g.range(0..64u64)));
        let seed = g.u64();
        let mut ix = CuckooIndex::new(128, 32, seed);
        let mut model: HashMap<u64, u32> = HashMap::new();
        let mut next_id = 0u32;
        let mut homeless: Option<u64> = None;
        for (op, d) in ops {
            // After a Cycle one resident is homeless; drop it from the
            // model exactly like the engine drops it from the cache.
            match op {
                0 => {
                    let k = GetKey { target: 0, disp: d };
                    if model.contains_key(&d) || homeless == Some(d) {
                        continue; // no duplicate inserts
                    }
                    match ix.insert(k, next_id) {
                        InsertOutcome::Placed { .. } => {
                            model.insert(d, next_id);
                        }
                        InsertOutcome::Cycle {
                            homeless: (hk, he), ..
                        } => {
                            // Everyone but the homeless pair is resident.
                            model.insert(d, next_id);
                            model.remove(&hk.disp);
                            let _ = he;
                            homeless = Some(hk.disp);
                        }
                    }
                    next_id += 1;
                }
                1 => {
                    let k = GetKey { target: 0, disp: d };
                    let got = ix.remove(&k);
                    let want = model.remove(&d);
                    assert_eq!(got, want, "remove({d}) mismatch");
                }
                _ => {
                    let k = GetKey { target: 0, disp: d };
                    let got = ix.lookup(&k);
                    let want = model.get(&d).copied();
                    assert_eq!(got, want, "lookup({d}) mismatch");
                }
            }
            assert_eq!(ix.len(), model.len());
        }
    });
}

/// The storage allocator never corrupts its structures and never loses
/// bytes, under arbitrary alloc/free interleavings.
#[test]
fn storage_invariants_hold() {
    check("storage invariants hold", 48, |g| {
        let ops = g.vec(1..250usize, |g| (g.bool(), g.range(1..600usize)));
        let mut s = Storage::new(8192);
        let mut live: Vec<(clampi_repro::clampi::storage::DescId, Vec<u8>)> = Vec::new();
        let mut stamp = 0u8;
        for (do_alloc, size) in ops {
            if do_alloc || live.is_empty() {
                if let Some(id) = s.alloc(size, 0) {
                    stamp = stamp.wrapping_add(1);
                    let data = vec![stamp; size];
                    s.write(id, &data);
                    live.push((id, data));
                }
            } else {
                let k = size % live.len();
                let (id, data) = live.swap_remove(k);
                // The region still holds exactly what was written.
                assert_eq!(s.read(id, data.len()), &data[..]);
                s.free(id);
            }
            s.check_invariants();
        }
        // Free everything: the buffer must return to one free region.
        for (id, data) in live {
            assert_eq!(s.read(id, data.len()), &data[..]);
            s.free(id);
        }
        s.check_invariants();
        assert_eq!(s.free_bytes(), 8192);
        assert_eq!(s.largest_free_region(), 8192);
    });
}

/// The engine's bookkeeping stays coherent under random workloads:
/// classifications partition the gets, residency matches the index, and
/// epoch closes promote exactly the pending entries.
#[test]
fn engine_accounting_is_coherent() {
    check("engine accounting coherent", 48, |g| {
        let accesses = arb_accesses(g, 4096, 256);
        let params = arb_params(g);
        let mut c = RmaCache::new(params);
        for (k, a) in accesses.iter().enumerate() {
            let key = GetKey {
                target: 9,
                disp: a.disp as u64,
            };
            let sig = LayoutSig::Contig(a.len);
            let data = vec![0xAB; a.len];
            let mut dst = vec![0u8; a.len];
            match c.process_lookup(key, &sig, &mut dst) {
                Lookup::Miss => {
                    c.finish_miss(key, sig, &data, 0);
                }
                Lookup::PartialHit { .. } => {
                    c.finish_partial(key, sig, &data, 0);
                }
                Lookup::Hit => {}
            }
            if k % 5 == 0 {
                c.epoch_close();
            }
        }
        c.epoch_close();
        let s = *c.stats();
        assert_eq!(
            s.total_gets,
            s.hits + s.direct + s.conflicting + s.capacity + s.failed,
            "classification must partition the gets"
        );
        assert_eq!(s.total_gets as usize, accesses.len());
        assert_eq!(
            c.cached_entries(),
            c.len(),
            "all entries CACHED after close"
        );
        assert!(c.len() <= c.params().index_entries);
        c.invalidate();
        assert!(c.is_empty());
        assert_eq!(c.free_bytes(), c.params().storage_bytes);
    });
}

/// The native block cache is equally transparent: block-cached reads equal
/// plain reads under arbitrary patterns and block sizes.
#[test]
fn blockcache_reads_equal_plain_reads() {
    check("block-cached reads equal plain reads", 24, |g| {
        use clampi_repro::clampi::{BlockCacheConfig, BlockCachedWindow};
        const WIN: usize = 1024;
        let accesses = arb_accesses(g, WIN, 200);
        let block_pow = g.range(5..10u32); // 32..512 B blocks
        let mem_kb = g.range(1..8usize);
        let cfg = BlockCacheConfig {
            block_size: 1 << block_pow,
            memory_bytes: mem_kb << 10,
            ..BlockCacheConfig::default()
        };
        let out = run_collect(SimConfig::checked(), 2, |p| {
            let mut win = BlockCachedWindow::create(p, WIN, cfg.clone());
            if p.rank() == 1 {
                let mut m = win.local_mut();
                for (i, b) in m.iter_mut().enumerate() {
                    *b = (i as u8).wrapping_mul(13).wrapping_add(3);
                }
            }
            p.barrier();
            let mut bad = None;
            if p.rank() == 0 {
                win.lock_all(p);
                for (k, a) in accesses.iter().enumerate() {
                    let mut buf = vec![0u8; a.len];
                    win.get(p, &mut buf, 1, a.disp, &Datatype::bytes(a.len), 1);
                    for (j, &b) in buf.iter().enumerate() {
                        let want = ((a.disp + j) as u8).wrapping_mul(13).wrapping_add(3);
                        if b != want {
                            bad = Some((k, j));
                            break;
                        }
                    }
                }
                win.unlock_all(p);
            }
            p.barrier();
            bad
        });
        assert_eq!(out[0].1, None, "block-cached read diverged");
    });
}

/// Trace replay is deterministic and its classification partitions the
/// gets for arbitrary traces.
#[test]
fn trace_replay_partitions_and_is_deterministic() {
    check("trace replay deterministic", 24, |g| {
        use clampi_repro::clampi::trace::{replay, ReplayCosts, Trace};
        let events = g.vec(1..150usize, |g| {
            (
                g.range(0..10u32) as u8,
                g.range(0..64u64),
                g.range(1..600u32),
            )
        });
        let params = arb_params(g);
        let mut t = Trace::new();
        for (kind, d, size) in events {
            match kind {
                0 => t.epoch_close(),
                1 => t.invalidate(),
                _ => t.get(0, d * 64, size),
            }
        }
        let a = replay(&t, params.clone(), ReplayCosts::default());
        let b = replay(&t, params, ReplayCosts::default());
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.completion_ns, b.completion_ns);
        let s = a.stats;
        assert_eq!(
            s.total_gets,
            s.hits + s.direct + s.conflicting + s.capacity + s.failed
        );
        assert_eq!(s.total_gets as usize, t.num_gets());
    });
}
